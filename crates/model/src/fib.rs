//! The generalized Fibonacci function `F_λ(t)` and its index function
//! `f_λ(n)`.
//!
//! Section 3 of the paper defines, for any λ ≥ 1,
//!
//! ```text
//! F_λ(t) = 1                          if 0 ≤ t < λ
//! F_λ(t) = F_λ(t−1) + F_λ(t−λ)        if t ≥ λ
//! ```
//!
//! `F_λ(t)` is the maximum number of processors that can know a message `t`
//! time units after a broadcast starts in MPS(·, λ) (proof of Lemma 5), and
//! its index function `f_λ(n) = min{t : F_λ(t) ≥ n}` is the exact optimal
//! broadcast time (Theorem 6). For λ = 1 these are powers of two and
//! ⌈log₂ n⌉ (binomial trees); for λ = 2 they are the Fibonacci numbers.
//!
//! # Exact evaluation on the tick lattice
//!
//! With λ = p/q in lowest terms, `F_λ` is a step function that is constant
//! on every interval `[k/q, (k+1)/q)`: this holds trivially on `[0, λ)` and
//! inductively for t ≥ λ because both recurrence arguments `t−1` and `t−λ`
//! shift by whole ticks. So `F_λ` is fully described by the integer sequence
//! `F[k] = F_λ(k/q)` with
//!
//! ```text
//! F[k] = 1                 for k < p
//! F[k] = F[k−q] + F[k−p]   for k ≥ p
//! ```
//!
//! which [`GenFib`] memoizes in a growable table. Values saturate at
//! `u128::MAX`, far beyond any representable processor count.

use crate::latency::Latency;
use crate::ratio::Ratio;
use crate::time::Time;
use std::cell::RefCell;

/// Memoized evaluator for `F_λ` and `f_λ` at a fixed latency λ.
///
/// Construction is cheap; the internal table grows on demand and is shared
/// across calls through interior mutability, so evaluation methods take
/// `&self`. The growth per query is bounded by Theorem 7:
/// `f_λ(n) ≤ 2λ + 2λ·log₂(n)/log₂(⌈λ⌉+1)` units, i.e. a few hundred ticks
/// for any realistic `n`.
///
/// ```
/// use postal_model::{GenFib, Latency, Time};
///
/// // λ = 2 yields the Fibonacci numbers: F_2(t) = Fib(t+1).
/// let fib = GenFib::new(Latency::from_int(2));
/// assert_eq!(fib.value(Time::from_int(5)), 8);
/// // Broadcasting to 8 processors at λ = 2 takes f_2(8) = 5 units.
/// assert_eq!(fib.index(8), Time::from_int(5));
/// ```
#[derive(Debug)]
pub struct GenFib {
    latency: Latency,
    /// λ in ticks (numerator p of λ = p/q).
    p: usize,
    /// Ticks per unit (denominator q of λ = p/q).
    q: usize,
    /// `table[k] = F_λ(k/q)`, saturating at `u128::MAX`.
    table: RefCell<Vec<u128>>,
}

impl GenFib {
    /// Creates an evaluator for the given latency.
    pub fn new(latency: Latency) -> GenFib {
        let p = latency.lambda_ticks() as usize;
        let q = latency.ticks_per_unit() as usize;
        GenFib {
            latency,
            p,
            q,
            table: RefCell::new(Vec::new()),
        }
    }

    /// The latency λ this evaluator is specialized for.
    pub fn latency(&self) -> Latency {
        self.latency
    }

    /// Ensures the memo table covers tick indices `0..=k`.
    fn grow_to(&self, k: usize) {
        let mut table = self.table.borrow_mut();
        if table.len() > k {
            return;
        }
        let additional = k + 1 - table.len();
        table.reserve(additional);
        while table.len() <= k {
            let i = table.len();
            let v = if i < self.p {
                1
            } else {
                let a = table[i - self.q];
                let b = table[i - self.p];
                a.saturating_add(b)
            };
            table.push(v);
        }
    }

    /// `F_λ` evaluated at an integer number of ticks (k/q time units).
    ///
    /// # Panics
    /// Panics if `k < 0`; `F_λ` is defined on nonnegative time only.
    pub fn value_at_ticks(&self, k: i128) -> u128 {
        assert!(k >= 0, "F_λ(t) is defined for t ≥ 0 only (got {k} ticks)");
        let k = k as usize;
        self.grow_to(k);
        self.table.borrow()[k]
    }

    /// `F_λ(t)` for an arbitrary nonnegative time `t`.
    ///
    /// `F_λ` is right-continuous and constant on tick intervals, so this is
    /// the table value at `⌊t·q⌋` ticks.
    ///
    /// # Panics
    /// Panics if `t < 0`.
    pub fn value(&self, t: Time) -> u128 {
        let ticks = (t.as_ratio() * Ratio::from_int(self.q as i128)).floor();
        self.value_at_ticks(ticks)
    }

    /// `f_λ(n) = min{t : F_λ(t) ≥ n}` in ticks.
    ///
    /// # Panics
    /// Panics if `n == 0`; the index function is defined for n ≥ 1.
    pub fn index_ticks(&self, n: u128) -> i128 {
        assert!(n >= 1, "f_λ(n) is defined for n ≥ 1 only");
        if n == 1 {
            return 0;
        }
        // Exponential search for an upper bound, then binary search. The
        // step function only increases at tick boundaries, so the minimal
        // real t with F_λ(t) ≥ n is itself a tick multiple.
        let mut hi = self.p.max(self.q); // first tick where growth can start
        while self.value_at_ticks(hi as i128) < n {
            hi = hi
                .checked_mul(2)
                .expect("f_λ(n) search exceeded usize ticks");
        }
        let mut lo = 0usize;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.value_at_ticks(mid as i128) >= n {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo as i128
    }

    /// `f_λ(n)` as exact model time.
    ///
    /// This is the optimal single-message broadcast time in MPS(n, λ)
    /// (Theorem 6).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&self, n: u128) -> Time {
        Time(Ratio::new(self.index_ticks(n), self.q as i128))
    }

    /// The BCAST split `j = F_λ(f_λ(n) − 1)` from item (a) of Algorithm
    /// BCAST: out of a range of `n` processors, the originator keeps the
    /// first `j` and delegates the remaining `n − j` to processor `p_j`.
    ///
    /// Lemma 3 guarantees `1 ≤ j ≤ n−1` for all `n ≥ 2`.
    ///
    /// # Panics
    /// Panics if `n < 2` (a singleton range has nothing to split).
    pub fn bcast_split(&self, n: u128) -> u128 {
        assert!(n >= 2, "bcast_split requires n ≥ 2 (got {n})");
        let f = self.index_ticks(n);
        debug_assert!(
            f >= self.q as i128,
            "f_λ(n) ≥ λ ≥ 1 unit must hold for n ≥ 2"
        );
        self.value_at_ticks(f - self.q as i128)
    }

    /// Number of ticks per time unit (the lattice resolution q).
    pub fn ticks_per_unit(&self) -> usize {
        self.q
    }

    /// λ in ticks (the lattice value p).
    pub fn lambda_ticks(&self) -> usize {
        self.p
    }
}

/// Convenience: `f_λ(n)` for a one-off query.
///
/// Allocates a fresh [`GenFib`]; reuse an evaluator in loops.
pub fn optimal_broadcast_time(n: u128, latency: Latency) -> Time {
    GenFib::new(latency).index(n)
}

/// Convenience: `F_λ(t)` for a one-off query.
pub fn gen_fib_value(t: Time, latency: Latency) -> u128 {
    GenFib::new(latency).value(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(latency: Latency) -> GenFib {
        GenFib::new(latency)
    }

    #[test]
    fn lambda_one_is_powers_of_two() {
        let g = fib(Latency::TELEPHONE);
        for t in 0..40i128 {
            assert_eq!(g.value(Time::from_int(t)), 1u128 << t, "t={t}");
        }
        // F_1 is a step function: constant between integers.
        assert_eq!(g.value(Time::new(7, 2)), 8); // F_1(3.5) = 2^3
    }

    #[test]
    fn lambda_one_index_is_ceil_log2() {
        let g = fib(Latency::TELEPHONE);
        for n in 1..=1025u128 {
            let expected = (n as f64).log2().ceil() as i128;
            // Guard against float edge cases at exact powers of two.
            let expected = if 1u128 << (expected as u32) < n {
                expected + 1
            } else if expected > 0 && 1u128 << ((expected - 1) as u32) >= n {
                expected - 1
            } else {
                expected
            };
            assert_eq!(g.index(n), Time::from_int(expected), "n={n}");
        }
    }

    #[test]
    fn lambda_two_is_fibonacci() {
        let g = fib(Latency::from_int(2));
        // F_2(t) = Fib(⌊t⌋ + 1) with Fib(1) = Fib(2) = 1.
        let mut fib_nums = vec![1u128, 1];
        for i in 2..40 {
            let v = fib_nums[i - 1] + fib_nums[i - 2];
            fib_nums.push(v);
        }
        for t in 0..39i128 {
            assert_eq!(g.value(Time::from_int(t)), fib_nums[t as usize], "t={t}");
        }
    }

    #[test]
    fn paper_example_n14_lambda_5_2() {
        // Figure 1: MPS(14, 5/2) completes at t = 15/2, and the root's
        // first split is j = 9.
        let g = fib(Latency::from_ratio(5, 2));
        assert_eq!(g.index(14), Time::new(15, 2));
        assert_eq!(g.bcast_split(14), 9);
        // The recursion from the figure: p0 then broadcasts in MPS(9, 5/2),
        // p9 in MPS(5, 5/2).
        assert_eq!(g.index(9), Time::new(13, 2));
        assert_eq!(g.bcast_split(9), 6);
        assert_eq!(g.index(5), Time::from_int(5));
        assert_eq!(g.bcast_split(5), 3);
    }

    #[test]
    fn base_case_is_one_below_lambda() {
        let g = fib(Latency::from_ratio(5, 2));
        assert_eq!(g.value(Time::ZERO), 1);
        assert_eq!(g.value(Time::ONE), 1);
        assert_eq!(g.value(Time::new(2, 1)), 1);
        assert_eq!(g.value(Time::new(9, 4)), 1); // 2.25 < 2.5
        assert_eq!(g.value(Time::new(5, 2)), 2); // exactly λ: F = F(λ−1)+F(0) = 2
    }

    #[test]
    fn value_is_nondecreasing_and_unbounded() {
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(3, 2),
            Latency::from_ratio(5, 2),
            Latency::from_int(7),
        ] {
            let g = fib(lam);
            let mut prev = 0u128;
            for k in 0..400i128 {
                let v = g.value_at_ticks(k);
                assert!(v >= prev, "λ={lam} k={k}");
                prev = v;
            }
            assert!(prev > 1_000, "λ={lam} should grow beyond 1000 by 400 ticks");
        }
    }

    #[test]
    fn claim1_index_function_properties() {
        // Claim 1 of the paper, instantiated for G = F_λ, I_G = f_λ.
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(5, 2),
            Latency::from_int(3),
            Latency::from_ratio(7, 3),
        ] {
            let g = fib(lam);
            let q = g.ticks_per_unit() as i128;
            // (2) f_λ(F_λ(t)) ≤ t for all t.
            for k in 0..120i128 {
                let v = g.value_at_ticks(k);
                assert!(g.index_ticks(v) <= k, "λ={lam} k={k}");
            }
            for n in 1..300u128 {
                let f = g.index_ticks(n);
                // (1) nondecreasing.
                if n > 1 {
                    assert!(f >= g.index_ticks(n - 1));
                }
                // (3) F_λ(f_λ(n)) ≥ n.
                assert!(g.value_at_ticks(f) >= n, "λ={lam} n={n}");
                // (4) F_λ(f_λ(n) − ε) < n for any ε > 0 (one tick suffices).
                if f > 0 {
                    assert!(g.value_at_ticks(f - 1) < n, "λ={lam} n={n}");
                }
            }
            let _ = q;
        }
    }

    #[test]
    fn bcast_split_is_valid_and_dominant() {
        // Lemma 3: 1 ≤ j ≤ n−1. Also j ≥ n − j: the originator always keeps
        // at least as many processors as it delegates (F(f−1) ≥ F(f−λ) since
        // λ ≥ 1 and F is nondecreasing).
        for lam in [
            Latency::TELEPHONE,
            Latency::from_ratio(3, 2),
            Latency::from_ratio(5, 2),
            Latency::from_int(4),
            Latency::from_int(10),
        ] {
            let g = fib(lam);
            for n in 2..=600u128 {
                let j = g.bcast_split(n);
                assert!(j >= 1 && j < n, "λ={lam} n={n} j={j}");
                assert!(j >= n - j, "λ={lam} n={n} j={j}");
            }
        }
    }

    #[test]
    fn index_grows_with_latency() {
        // Claim 2: pointwise-larger step functions have pointwise-smaller
        // index functions; larger λ makes F_λ smaller, hence f_λ larger.
        let lams = [
            Latency::TELEPHONE,
            Latency::from_ratio(3, 2),
            Latency::from_int(2),
            Latency::from_ratio(5, 2),
            Latency::from_int(3),
        ];
        for w in lams.windows(2) {
            let (a, b) = (fib(w[0]), fib(w[1]));
            for n in 1..200u128 {
                assert!(
                    a.index(n) <= b.index(n),
                    "f_{}({n}) > f_{}({n})",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn one_off_helpers_match_evaluator() {
        let lam = Latency::from_ratio(5, 2);
        assert_eq!(optimal_broadcast_time(14, lam), Time::new(15, 2));
        assert_eq!(gen_fib_value(Time::new(15, 2), lam), 14);
        let g = fib(lam);
        assert_eq!(g.value(Time::new(15, 2)), 14);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let g = fib(Latency::TELEPHONE);
        // 2^127 < u128::MAX < 2^128: ticks beyond 127 saturate.
        assert_eq!(g.value_at_ticks(200), u128::MAX);
    }

    #[test]
    fn index_of_one_is_zero() {
        for lam in [Latency::TELEPHONE, Latency::from_ratio(5, 2)] {
            assert_eq!(fib(lam).index(1), Time::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "n ≥ 1")]
    fn index_of_zero_panics() {
        let _ = fib(Latency::TELEPHONE).index(0);
    }

    #[test]
    #[should_panic(expected = "t ≥ 0")]
    fn negative_time_panics() {
        let _ = fib(Latency::TELEPHONE).value_at_ticks(-1);
    }

    #[test]
    fn large_n_stays_fast_and_exact() {
        let g = fib(Latency::from_ratio(5, 2));
        let n = 10u128.pow(18);
        let f = g.index_ticks(n);
        // Theorem 7(2) sandwich, in ticks (q = 2).
        let log_n = (n as f64).log2();
        let lam = 2.5f64;
        let lower = lam * log_n / (3f64).log2();
        let upper = 2.0 * lam + 2.0 * lam * log_n / (3f64).log2();
        let f_units = f as f64 / 2.0;
        assert!(f_units >= lower - 1e-9 && f_units <= upper + 1e-9);
    }
}
