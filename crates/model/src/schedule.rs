//! Explicit postal-model schedules and their validator.
//!
//! A *schedule* is the static counterpart of an event-driven execution:
//! a list of timed sends `(src, dst, send_start)`. The paper reasons
//! about algorithms through their schedules (Figure 1 is one), and its
//! correctness arguments hinge on three validity rules, which
//! [`Schedule::validate_ports`] and [`Schedule::validate_broadcast`]
//! check mechanically:
//!
//! 1. **Output ports** — no processor starts two sends less than 1 unit
//!    apart (it sends "to a new processor every unit of time", never
//!    faster).
//! 2. **Input ports** — no processor's receive windows
//!    `[s+λ−1, s+λ]` overlap.
//! 3. **Causality** (for broadcast schedules) — a processor other than
//!    the originator sends only at or after the time it has fully
//!    received the message.
//!
//! The validator lets the crates above prove properties of *arbitrary*
//! schedules (including hand-written or adversarial ones), independent
//! of the event-driven engine.
//!
//! Since the introduction of the [`crate::lint`] engine, the two
//! `validate_*` methods are thin (deprecated) wrappers that run the
//! relevant lints and translate the first error back into the legacy
//! [`ScheduleError`]. New code should call [`crate::lint::lint_schedule`]
//! directly and get *all* findings with stable codes.

use crate::latency::Latency;
use crate::lint::{lint_schedule, Diagnostic, LintCode, LintOptions, Severity};
use crate::time::Time;

pub use crate::lint::{
    Diagnostic as LintDiagnostic, LintCode as ScheduleLintCode, Severity as LintSeverity,
};

/// One timed send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedSend {
    /// Sending processor index.
    pub src: u32,
    /// Receiving processor index.
    pub dst: u32,
    /// When the sender's port starts transmitting.
    pub send_start: Time,
}

impl TimedSend {
    /// When the receiver has fully received the message.
    pub fn recv_finish(&self, latency: Latency) -> Time {
        self.send_start + latency.as_time()
    }
}

/// A static postal-model schedule over `n` processors at latency λ.
///
/// ```
/// use postal_model::schedule::{Schedule, TimedSend};
/// use postal_model::{Latency, Time};
///
/// // p0 → p1 at t = 0; p1 forwards to p2 the moment it knows (t = λ).
/// use postal_model::lint::{is_clean, lint_schedule, LintOptions, Severity};
/// let lam = Latency::from_ratio(5, 2);
/// let schedule = Schedule::new(3, lam, vec![
///     TimedSend { src: 0, dst: 1, send_start: Time::ZERO },
///     TimedSend { src: 1, dst: 2, send_start: Time::new(5, 2) },
/// ]);
/// let diags = lint_schedule(&schedule, &LintOptions::default());
/// assert!(is_clean(&diags, Severity::Error));
/// assert_eq!(schedule.completion(), Time::from_int(5));
/// ```
#[derive(Debug, Clone)]
pub struct Schedule {
    n: u32,
    latency: Latency,
    sends: Vec<TimedSend>,
}

/// A validity violation found by schedule validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A send references a processor index ≥ n, or a self-send.
    BadEndpoints {
        /// The offending send.
        send: TimedSend,
    },
    /// Two sends from one processor start less than 1 unit apart.
    OutputPortOverlap {
        /// The processor.
        proc: u32,
        /// Start of the earlier send.
        first: Time,
        /// Start of the later (conflicting) send.
        second: Time,
    },
    /// Two receives at one processor overlap.
    InputPortOverlap {
        /// The processor.
        proc: u32,
        /// Finish of the earlier receive.
        first_finish: Time,
        /// Finish of the later (conflicting) receive.
        second_finish: Time,
    },
    /// A non-originator sends before it has received the message.
    SendsBeforeKnowing {
        /// The processor.
        proc: u32,
        /// When it sends.
        sends_at: Time,
        /// When it first knows the message (`None` = never receives).
        knows_at: Option<Time>,
    },
    /// A send starts at negative time.
    NegativeTime {
        /// The offending send.
        send: TimedSend,
    },
}

impl Schedule {
    /// Creates a schedule; sends may be in any order.
    pub fn new(n: u32, latency: Latency, mut sends: Vec<TimedSend>) -> Schedule {
        sends.sort_by_key(|s| (s.send_start, s.src, s.dst));
        Schedule { n, latency, sends }
    }

    /// Number of processors.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The latency the schedule is built for.
    pub fn latency(&self) -> Latency {
        self.latency
    }

    /// The sends, ordered by start time.
    pub fn sends(&self) -> &[TimedSend] {
        &self.sends
    }

    /// The completion time: latest receive finish (0 for empty).
    pub fn completion(&self) -> Time {
        self.sends
            .iter()
            .map(|s| s.recv_finish(self.latency))
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Validates port constraints (rules 1–2 of the module docs).
    ///
    /// Thin wrapper over [`crate::lint::lint_schedule`] with
    /// [`LintOptions::ports_only`]; prefer the lint engine in new code —
    /// it reports *all* violations with stable codes, not just the first.
    ///
    /// # Errors
    /// Returns the first violation in deterministic order.
    #[deprecated(
        since = "0.2.0",
        note = "use postal_model::lint::lint_schedule with LintOptions::ports_only()"
    )]
    pub fn validate_ports(&self) -> Result<(), ScheduleError> {
        self.first_legacy_error(&lint_schedule(self, &LintOptions::ports_only()))
    }

    /// Validates the schedule as a *broadcast* schedule from `p_0`
    /// (rules 1–3): ports plus causality — every sender other than the
    /// originator must have received the message before its first send,
    /// and every processor must receive it (for `n ≥ 2`, all of
    /// `1..n`).
    ///
    /// Thin wrapper over [`crate::lint::lint_schedule`]; prefer the lint
    /// engine in new code — it reports *all* violations with stable
    /// codes, not just the first, plus quality warnings.
    ///
    /// # Errors
    /// Returns the first violation.
    #[deprecated(
        since = "0.2.0",
        note = "use postal_model::lint::lint_schedule with LintOptions::default()"
    )]
    pub fn validate_broadcast(&self) -> Result<(), ScheduleError> {
        self.first_legacy_error(&lint_schedule(self, &LintOptions::default()))
    }

    /// Translates the first error-severity diagnostic into the legacy
    /// [`ScheduleError`] shape.
    fn first_legacy_error(&self, diags: &[Diagnostic]) -> Result<(), ScheduleError> {
        for d in diags {
            if d.severity < Severity::Error {
                continue;
            }
            return Err(match d.code {
                LintCode::MalformedSend => {
                    let send = d.sends[0];
                    if send.src >= self.n || send.dst >= self.n || send.src == send.dst {
                        ScheduleError::BadEndpoints { send }
                    } else {
                        ScheduleError::NegativeTime { send }
                    }
                }
                LintCode::OutputPortOverlap => ScheduleError::OutputPortOverlap {
                    proc: d.proc.unwrap_or(0),
                    first: d.sends[0].send_start,
                    second: d.sends[1].send_start,
                },
                LintCode::InputWindowOverlap => ScheduleError::InputPortOverlap {
                    proc: d.proc.unwrap_or(0),
                    first_finish: d.sends[0].recv_finish(self.latency),
                    second_finish: d.sends[1].recv_finish(self.latency),
                },
                LintCode::CausalityViolation => ScheduleError::SendsBeforeKnowing {
                    proc: d.proc.unwrap_or(0),
                    sends_at: d.sends[0].send_start,
                    knows_at: d.related_time,
                },
                LintCode::UninformedProcessor => ScheduleError::SendsBeforeKnowing {
                    proc: d.proc.unwrap_or(0),
                    sends_at: Time::ZERO,
                    knows_at: None,
                },
                // Quality codes have no legacy representation; they are
                // never emitted at error severity for a schedule that is
                // clean of the codes above (the paper's lower bound).
                LintCode::IdlePortWaste | LintCode::OptimalityGap => continue,
            });
        }
        Ok(())
    }

    /// Number of sends.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers are exactly what is under test
mod tests {
    use super::*;

    fn send(src: u32, dst: u32, num: i128, den: i128) -> TimedSend {
        TimedSend {
            src,
            dst,
            send_start: Time::new(num, den),
        }
    }

    fn lam52() -> Latency {
        Latency::from_ratio(5, 2)
    }

    #[test]
    fn valid_two_hop_broadcast() {
        // p0 → p1 at 0; p1 → p2 at λ.
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1), send(1, 2, 5, 2)]);
        s.validate_broadcast().unwrap();
        assert_eq!(s.completion(), Time::from_int(5));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn output_port_overlap_detected() {
        let s = Schedule::new(
            3,
            lam52(),
            vec![send(0, 1, 0, 1), send(0, 2, 1, 2)], // second at 0.5 < 1
        );
        assert!(matches!(
            s.validate_ports(),
            Err(ScheduleError::OutputPortOverlap { proc: 0, .. })
        ));
    }

    #[test]
    fn input_port_overlap_detected() {
        // Both arrive at p2 with receive finishes 5/2 and 3: gap 1/2 < 1.
        let s = Schedule::new(3, lam52(), vec![send(0, 2, 0, 1), send(1, 2, 1, 2)]);
        assert!(matches!(
            s.validate_ports(),
            Err(ScheduleError::InputPortOverlap { proc: 2, .. })
        ));
    }

    #[test]
    fn causality_violation_detected() {
        // p1 forwards at t = 1 but only knows the message at λ = 5/2.
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1), send(1, 2, 1, 1)]);
        assert!(matches!(
            s.validate_broadcast(),
            Err(ScheduleError::SendsBeforeKnowing { proc: 1, .. })
        ));
        // Port-only validation passes (ports don't know about causality).
        s.validate_ports().unwrap();
    }

    #[test]
    fn uncovered_processor_detected() {
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1)]);
        assert!(matches!(
            s.validate_broadcast(),
            Err(ScheduleError::SendsBeforeKnowing {
                proc: 2,
                knows_at: None,
                ..
            })
        ));
    }

    #[test]
    fn bad_endpoints_detected() {
        let s = Schedule::new(2, lam52(), vec![send(0, 5, 0, 1)]);
        assert!(matches!(
            s.validate_ports(),
            Err(ScheduleError::BadEndpoints { .. })
        ));
        let s = Schedule::new(2, lam52(), vec![send(1, 1, 0, 1)]);
        assert!(matches!(
            s.validate_ports(),
            Err(ScheduleError::BadEndpoints { .. })
        ));
    }

    #[test]
    fn negative_time_detected() {
        let s = Schedule::new(2, lam52(), vec![send(0, 1, -1, 1)]);
        assert!(matches!(
            s.validate_ports(),
            Err(ScheduleError::NegativeTime { .. })
        ));
    }

    #[test]
    fn empty_schedule_is_trivially_valid() {
        let s = Schedule::new(1, lam52(), vec![]);
        s.validate_broadcast().unwrap();
        assert!(s.is_empty());
        assert_eq!(s.completion(), Time::ZERO);
    }

    #[test]
    fn exact_back_to_back_is_legal() {
        // Sends at 0 and 1 (exactly one unit apart): legal. Receives
        // finishing exactly one unit apart: legal.
        let s = Schedule::new(
            4,
            Latency::from_int(2),
            vec![send(0, 1, 0, 1), send(0, 2, 1, 1), send(0, 3, 2, 1)],
        );
        s.validate_broadcast().unwrap();
    }
}
