//! Explicit postal-model schedules.
//!
//! A *schedule* is the static counterpart of an event-driven execution:
//! a list of timed sends `(src, dst, send_start)`. The paper reasons
//! about algorithms through their schedules (Figure 1 is one), and its
//! correctness arguments hinge on three validity rules, which the
//! [`crate::lint`] engine checks mechanically:
//!
//! 1. **Output ports** — no processor starts two sends less than 1 unit
//!    apart (it sends "to a new processor every unit of time", never
//!    faster).
//! 2. **Input ports** — no processor's receive windows
//!    `[s+λ−1, s+λ]` overlap.
//! 3. **Causality** (for broadcast schedules) — a processor other than
//!    the originator sends only at or after the time it has fully
//!    received the message.
//!
//! Run [`crate::lint::lint_schedule`] over a schedule to get *all*
//! findings with stable codes (P0001–P0007); this lets the crates above
//! prove properties of *arbitrary* schedules (including hand-written or
//! adversarial ones), independent of the event-driven engine.

use crate::latency::Latency;
use crate::time::Time;

pub use crate::lint::{
    Diagnostic as LintDiagnostic, LintCode as ScheduleLintCode, Severity as LintSeverity,
};

/// One timed send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedSend {
    /// Sending processor index.
    pub src: u32,
    /// Receiving processor index.
    pub dst: u32,
    /// When the sender's port starts transmitting.
    pub send_start: Time,
}

impl TimedSend {
    /// When the receiver has fully received the message.
    pub fn recv_finish(&self, latency: Latency) -> Time {
        self.send_start + latency.as_time()
    }
}

/// A static postal-model schedule over `n` processors at latency λ.
///
/// ```
/// use postal_model::schedule::{Schedule, TimedSend};
/// use postal_model::{Latency, Time};
///
/// // p0 → p1 at t = 0; p1 forwards to p2 the moment it knows (t = λ).
/// use postal_model::lint::{is_clean, lint_schedule, LintOptions, Severity};
/// let lam = Latency::from_ratio(5, 2);
/// let schedule = Schedule::new(3, lam, vec![
///     TimedSend { src: 0, dst: 1, send_start: Time::ZERO },
///     TimedSend { src: 1, dst: 2, send_start: Time::new(5, 2) },
/// ]);
/// let diags = lint_schedule(&schedule, &LintOptions::default());
/// assert!(is_clean(&diags, Severity::Error));
/// assert_eq!(schedule.completion(), Time::from_int(5));
/// ```
#[derive(Debug, Clone)]
pub struct Schedule {
    n: u32,
    latency: Latency,
    sends: Vec<TimedSend>,
}

impl Schedule {
    /// Creates a schedule; sends may be in any order.
    pub fn new(n: u32, latency: Latency, mut sends: Vec<TimedSend>) -> Schedule {
        sends.sort_by_key(|s| (s.send_start, s.src, s.dst));
        Schedule { n, latency, sends }
    }

    /// Number of processors.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The latency the schedule is built for.
    pub fn latency(&self) -> Latency {
        self.latency
    }

    /// The sends, ordered by start time.
    pub fn sends(&self) -> &[TimedSend] {
        &self.sends
    }

    /// The completion time: latest receive finish (0 for empty).
    pub fn completion(&self) -> Time {
        self.sends
            .iter()
            .map(|s| s.recv_finish(self.latency))
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Number of sends.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::{is_clean, lint_schedule, LintCode, LintOptions, Severity};

    fn send(src: u32, dst: u32, num: i128, den: i128) -> TimedSend {
        TimedSend {
            src,
            dst,
            send_start: Time::new(num, den),
        }
    }

    fn lam52() -> Latency {
        Latency::from_ratio(5, 2)
    }

    /// Error-severity codes reported for a schedule under `opts`.
    fn error_codes(s: &Schedule, opts: &LintOptions) -> Vec<LintCode> {
        lint_schedule(s, opts)
            .into_iter()
            .filter(|d| d.severity >= Severity::Error)
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn valid_two_hop_broadcast() {
        // p0 → p1 at 0; p1 → p2 at λ.
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1), send(1, 2, 5, 2)]);
        assert!(is_clean(
            &lint_schedule(&s, &LintOptions::default()),
            Severity::Error
        ));
        assert_eq!(s.completion(), Time::from_int(5));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn output_port_overlap_detected() {
        let s = Schedule::new(
            3,
            lam52(),
            vec![send(0, 1, 0, 1), send(0, 2, 1, 2)], // second at 0.5 < 1
        );
        let codes = error_codes(&s, &LintOptions::ports_only());
        assert_eq!(codes, vec![LintCode::OutputPortOverlap]);
        let diags = lint_schedule(&s, &LintOptions::ports_only());
        assert_eq!(diags[0].proc, Some(0));
    }

    #[test]
    fn input_port_overlap_detected() {
        // Both arrive at p2 with receive finishes 5/2 and 3: gap 1/2 < 1.
        let s = Schedule::new(3, lam52(), vec![send(0, 2, 0, 1), send(1, 2, 1, 2)]);
        let diags = lint_schedule(&s, &LintOptions::ports_only());
        let overlap: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::InputWindowOverlap)
            .collect();
        assert_eq!(overlap.len(), 1);
        assert_eq!(overlap[0].proc, Some(2));
    }

    #[test]
    fn causality_violation_detected() {
        // p1 forwards at t = 1 but only knows the message at λ = 5/2.
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1), send(1, 2, 1, 1)]);
        let codes = error_codes(&s, &LintOptions::default());
        assert!(codes.contains(&LintCode::CausalityViolation));
        // Port-only linting passes (ports don't know about causality).
        assert!(error_codes(&s, &LintOptions::ports_only()).is_empty());
    }

    #[test]
    fn uncovered_processor_detected() {
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1)]);
        let diags = lint_schedule(&s, &LintOptions::default());
        let uninformed: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::UninformedProcessor)
            .collect();
        assert_eq!(uninformed.len(), 1);
        assert_eq!(uninformed[0].proc, Some(2));
    }

    #[test]
    fn bad_endpoints_detected() {
        let s = Schedule::new(2, lam52(), vec![send(0, 5, 0, 1)]);
        assert_eq!(
            error_codes(&s, &LintOptions::ports_only()),
            vec![LintCode::MalformedSend]
        );
        let s = Schedule::new(2, lam52(), vec![send(1, 1, 0, 1)]);
        assert_eq!(
            error_codes(&s, &LintOptions::ports_only()),
            vec![LintCode::MalformedSend]
        );
    }

    #[test]
    fn negative_time_detected() {
        let s = Schedule::new(2, lam52(), vec![send(0, 1, -1, 1)]);
        assert_eq!(
            error_codes(&s, &LintOptions::ports_only()),
            vec![LintCode::MalformedSend]
        );
    }

    #[test]
    fn empty_schedule_is_trivially_valid() {
        let s = Schedule::new(1, lam52(), vec![]);
        assert!(is_clean(
            &lint_schedule(&s, &LintOptions::default()),
            Severity::Error
        ));
        assert!(s.is_empty());
        assert_eq!(s.completion(), Time::ZERO);
    }

    #[test]
    fn exact_back_to_back_is_legal() {
        // Sends at 0 and 1 (exactly one unit apart): legal. Receives
        // finishing exactly one unit apart: legal.
        let s = Schedule::new(
            4,
            Latency::from_int(2),
            vec![send(0, 1, 0, 1), send(0, 2, 1, 1), send(0, 3, 2, 1)],
        );
        assert!(is_clean(
            &lint_schedule(&s, &LintOptions::default()),
            Severity::Error
        ));
    }
}
