//! Explicit postal-model schedules and their validator.
//!
//! A *schedule* is the static counterpart of an event-driven execution:
//! a list of timed sends `(src, dst, send_start)`. The paper reasons
//! about algorithms through their schedules (Figure 1 is one), and its
//! correctness arguments hinge on three validity rules, which
//! [`Schedule::validate_ports`] and [`Schedule::validate_broadcast`]
//! check mechanically:
//!
//! 1. **Output ports** — no processor starts two sends less than 1 unit
//!    apart (it sends "to a new processor every unit of time", never
//!    faster).
//! 2. **Input ports** — no processor's receive windows
//!    `[s+λ−1, s+λ]` overlap.
//! 3. **Causality** (for broadcast schedules) — a processor other than
//!    the originator sends only at or after the time it has fully
//!    received the message.
//!
//! The validator lets the crates above prove properties of *arbitrary*
//! schedules (including hand-written or adversarial ones), independent
//! of the event-driven engine.

use crate::latency::Latency;
use crate::time::Time;
use std::collections::HashMap;

/// One timed send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimedSend {
    /// Sending processor index.
    pub src: u32,
    /// Receiving processor index.
    pub dst: u32,
    /// When the sender's port starts transmitting.
    pub send_start: Time,
}

impl TimedSend {
    /// When the receiver has fully received the message.
    pub fn recv_finish(&self, latency: Latency) -> Time {
        self.send_start + latency.as_time()
    }
}

/// A static postal-model schedule over `n` processors at latency λ.
///
/// ```
/// use postal_model::schedule::{Schedule, TimedSend};
/// use postal_model::{Latency, Time};
///
/// // p0 → p1 at t = 0; p1 forwards to p2 the moment it knows (t = λ).
/// let lam = Latency::from_ratio(5, 2);
/// let schedule = Schedule::new(3, lam, vec![
///     TimedSend { src: 0, dst: 1, send_start: Time::ZERO },
///     TimedSend { src: 1, dst: 2, send_start: Time::new(5, 2) },
/// ]);
/// schedule.validate_broadcast().unwrap();
/// assert_eq!(schedule.completion(), Time::from_int(5));
/// ```
#[derive(Debug, Clone)]
pub struct Schedule {
    n: u32,
    latency: Latency,
    sends: Vec<TimedSend>,
}

/// A validity violation found by schedule validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A send references a processor index ≥ n, or a self-send.
    BadEndpoints {
        /// The offending send.
        send: TimedSend,
    },
    /// Two sends from one processor start less than 1 unit apart.
    OutputPortOverlap {
        /// The processor.
        proc: u32,
        /// Start of the earlier send.
        first: Time,
        /// Start of the later (conflicting) send.
        second: Time,
    },
    /// Two receives at one processor overlap.
    InputPortOverlap {
        /// The processor.
        proc: u32,
        /// Finish of the earlier receive.
        first_finish: Time,
        /// Finish of the later (conflicting) receive.
        second_finish: Time,
    },
    /// A non-originator sends before it has received the message.
    SendsBeforeKnowing {
        /// The processor.
        proc: u32,
        /// When it sends.
        sends_at: Time,
        /// When it first knows the message (`None` = never receives).
        knows_at: Option<Time>,
    },
    /// A send starts at negative time.
    NegativeTime {
        /// The offending send.
        send: TimedSend,
    },
}

impl Schedule {
    /// Creates a schedule; sends may be in any order.
    pub fn new(n: u32, latency: Latency, mut sends: Vec<TimedSend>) -> Schedule {
        sends.sort_by_key(|s| (s.send_start, s.src, s.dst));
        Schedule { n, latency, sends }
    }

    /// Number of processors.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The latency the schedule is built for.
    pub fn latency(&self) -> Latency {
        self.latency
    }

    /// The sends, ordered by start time.
    pub fn sends(&self) -> &[TimedSend] {
        &self.sends
    }

    /// The completion time: latest receive finish (0 for empty).
    pub fn completion(&self) -> Time {
        self.sends
            .iter()
            .map(|s| s.recv_finish(self.latency))
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Validates port constraints (rules 1–2 of the module docs).
    ///
    /// # Errors
    /// Returns the first violation in deterministic order.
    pub fn validate_ports(&self) -> Result<(), ScheduleError> {
        let mut out_last: HashMap<u32, Time> = HashMap::new();
        for s in &self.sends {
            if s.src >= self.n || s.dst >= self.n || s.src == s.dst {
                return Err(ScheduleError::BadEndpoints { send: *s });
            }
            if s.send_start < Time::ZERO {
                return Err(ScheduleError::NegativeTime { send: *s });
            }
            if let Some(&prev) = out_last.get(&s.src) {
                if s.send_start < prev + Time::ONE {
                    return Err(ScheduleError::OutputPortOverlap {
                        proc: s.src,
                        first: prev,
                        second: s.send_start,
                    });
                }
            }
            out_last.insert(s.src, s.send_start);
        }
        // Receives, in arrival order per destination.
        let mut arrivals: HashMap<u32, Vec<Time>> = HashMap::new();
        for s in &self.sends {
            arrivals
                .entry(s.dst)
                .or_default()
                .push(s.recv_finish(self.latency));
        }
        for (proc, mut times) in arrivals {
            times.sort();
            for w in times.windows(2) {
                if w[1] < w[0] + Time::ONE {
                    return Err(ScheduleError::InputPortOverlap {
                        proc,
                        first_finish: w[0],
                        second_finish: w[1],
                    });
                }
            }
        }
        Ok(())
    }

    /// Validates the schedule as a *broadcast* schedule from `p_0`
    /// (rules 1–3): ports plus causality — every sender other than the
    /// originator must have received the message before its first send,
    /// and every processor must receive it (for `n ≥ 2`, all of
    /// `1..n`).
    ///
    /// # Errors
    /// Returns the first violation.
    pub fn validate_broadcast(&self) -> Result<(), ScheduleError> {
        self.validate_ports()?;
        // First-receipt times.
        let mut knows: HashMap<u32, Time> = HashMap::new();
        for s in &self.sends {
            let r = s.recv_finish(self.latency);
            knows
                .entry(s.dst)
                .and_modify(|t| {
                    if r < *t {
                        *t = r;
                    }
                })
                .or_insert(r);
        }
        for s in &self.sends {
            if s.src == 0 {
                continue;
            }
            match knows.get(&s.src) {
                Some(&t) if t <= s.send_start => {}
                other => {
                    return Err(ScheduleError::SendsBeforeKnowing {
                        proc: s.src,
                        sends_at: s.send_start,
                        knows_at: other.copied(),
                    });
                }
            }
        }
        for p in 1..self.n {
            if !knows.contains_key(&p) {
                return Err(ScheduleError::SendsBeforeKnowing {
                    proc: p,
                    sends_at: Time::ZERO,
                    knows_at: None,
                });
            }
        }
        Ok(())
    }

    /// Number of sends.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(src: u32, dst: u32, num: i128, den: i128) -> TimedSend {
        TimedSend {
            src,
            dst,
            send_start: Time::new(num, den),
        }
    }

    fn lam52() -> Latency {
        Latency::from_ratio(5, 2)
    }

    #[test]
    fn valid_two_hop_broadcast() {
        // p0 → p1 at 0; p1 → p2 at λ.
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1), send(1, 2, 5, 2)]);
        s.validate_broadcast().unwrap();
        assert_eq!(s.completion(), Time::from_int(5));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn output_port_overlap_detected() {
        let s = Schedule::new(
            3,
            lam52(),
            vec![send(0, 1, 0, 1), send(0, 2, 1, 2)], // second at 0.5 < 1
        );
        assert!(matches!(
            s.validate_ports(),
            Err(ScheduleError::OutputPortOverlap { proc: 0, .. })
        ));
    }

    #[test]
    fn input_port_overlap_detected() {
        // Both arrive at p2 with receive finishes 5/2 and 3: gap 1/2 < 1.
        let s = Schedule::new(3, lam52(), vec![send(0, 2, 0, 1), send(1, 2, 1, 2)]);
        assert!(matches!(
            s.validate_ports(),
            Err(ScheduleError::InputPortOverlap { proc: 2, .. })
        ));
    }

    #[test]
    fn causality_violation_detected() {
        // p1 forwards at t = 1 but only knows the message at λ = 5/2.
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1), send(1, 2, 1, 1)]);
        assert!(matches!(
            s.validate_broadcast(),
            Err(ScheduleError::SendsBeforeKnowing { proc: 1, .. })
        ));
        // Port-only validation passes (ports don't know about causality).
        s.validate_ports().unwrap();
    }

    #[test]
    fn uncovered_processor_detected() {
        let s = Schedule::new(3, lam52(), vec![send(0, 1, 0, 1)]);
        assert!(matches!(
            s.validate_broadcast(),
            Err(ScheduleError::SendsBeforeKnowing {
                proc: 2,
                knows_at: None,
                ..
            })
        ));
    }

    #[test]
    fn bad_endpoints_detected() {
        let s = Schedule::new(2, lam52(), vec![send(0, 5, 0, 1)]);
        assert!(matches!(
            s.validate_ports(),
            Err(ScheduleError::BadEndpoints { .. })
        ));
        let s = Schedule::new(2, lam52(), vec![send(1, 1, 0, 1)]);
        assert!(matches!(
            s.validate_ports(),
            Err(ScheduleError::BadEndpoints { .. })
        ));
    }

    #[test]
    fn negative_time_detected() {
        let s = Schedule::new(2, lam52(), vec![send(0, 1, -1, 1)]);
        assert!(matches!(
            s.validate_ports(),
            Err(ScheduleError::NegativeTime { .. })
        ));
    }

    #[test]
    fn empty_schedule_is_trivially_valid() {
        let s = Schedule::new(1, lam52(), vec![]);
        s.validate_broadcast().unwrap();
        assert!(s.is_empty());
        assert_eq!(s.completion(), Time::ZERO);
    }

    #[test]
    fn exact_back_to_back_is_legal() {
        // Sends at 0 and 1 (exactly one unit apart): legal. Receives
        // finishing exactly one unit apart: legal.
        let s = Schedule::new(
            4,
            Latency::from_int(2),
            vec![send(0, 1, 0, 1), send(0, 2, 1, 1), send(0, 3, 2, 1)],
        );
        s.validate_broadcast().unwrap();
    }
}
