//! Machine-readable experiment summaries.
//!
//! Every `exp_*` binary writes a `BENCH_<id>.json` file alongside its
//! stdout report so CI and downstream tooling can assert on experiment
//! outcomes (row counts, violation counts, overheads) without scraping
//! text tables. Files land in `$BENCH_OUT_DIR` when set, else at the
//! workspace root (see [`out_dir`]); every binary funnels through
//! [`emit_json`] so the destination and the trailing `wrote <path>`
//! line stay uniform.

use crate::table::Table;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

#[derive(Debug, Clone)]
enum Value {
    Int(i128),
    Num(f64),
    Str(String),
}

/// A flat JSON summary of one experiment run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    id: String,
    fields: Vec<(String, Value)>,
    tables: Vec<(String, usize)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl BenchReport {
    /// Starts a report for the experiment with the given id (the binary
    /// name without the `exp_` prefix).
    pub fn new(id: &str) -> BenchReport {
        BenchReport {
            id: id.to_string(),
            fields: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Records an integer field.
    pub fn int(&mut self, key: &str, value: i128) -> &mut BenchReport {
        self.fields.push((key.to_string(), Value::Int(value)));
        self
    }

    /// Records a floating-point field (non-finite values serialize as
    /// `null` to keep the file parseable).
    pub fn num(&mut self, key: &str, value: f64) -> &mut BenchReport {
        self.fields.push((key.to_string(), Value::Num(value)));
        self
    }

    /// Records a string field.
    pub fn text(&mut self, key: &str, value: &str) -> &mut BenchReport {
        self.fields
            .push((key.to_string(), Value::Str(value.to_string())));
        self
    }

    /// Records a table's title and row count in the `tables` array.
    pub fn table(&mut self, table: &Table) -> &mut BenchReport {
        self.tables.push((table.title().to_string(), table.len()));
        self
    }

    /// Serializes the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"experiment\": \"{}\",", json_escape(&self.id));
        for (key, value) in &self.fields {
            let _ = write!(out, "  \"{}\": ", json_escape(key));
            match value {
                Value::Int(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Num(v) if v.is_finite() => {
                    let _ = write!(out, "{v}");
                }
                Value::Num(_) => out.push_str("null"),
                Value::Str(v) => {
                    let _ = write!(out, "\"{}\"", json_escape(v));
                }
            }
            out.push_str(",\n");
        }
        out.push_str("  \"tables\": [");
        for (i, (title, rows)) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{ \"title\": \"{}\", \"rows\": {rows} }}",
                json_escape(title)
            );
        }
        if !self.tables.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Writes `BENCH_<id>.json` into `dir` and returns the path.
    ///
    /// # Panics
    /// Panics when the file cannot be written — an experiment whose
    /// summary is lost should fail loudly, not silently.
    pub fn write_to(&self, dir: &std::path::Path) -> PathBuf {
        let path = dir.join(format!("BENCH_{}.json", self.id));
        std::fs::write(&path, self.to_json()).expect("writable BENCH output directory");
        path
    }

    /// Writes the summary to [`out_dir`] and returns the path.
    ///
    /// # Panics
    /// Panics when the file cannot be written.
    pub fn write(&self) -> PathBuf {
        self.write_to(&out_dir())
    }
}

/// The standardized destination for every `exp_*` artifact:
/// `$BENCH_OUT_DIR` when set, else the workspace root — so running a
/// binary from any subdirectory lands `BENCH_<id>.json` in the one
/// place CI looks — falling back to the current directory if the
/// compile-time workspace path no longer exists (e.g. an installed
/// binary).
pub fn out_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("BENCH_OUT_DIR") {
        return PathBuf::from(dir);
    }
    if let Some(root) = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .filter(|p| p.is_dir())
    {
        return root.to_path_buf();
    }
    PathBuf::from(".")
}

/// Writes `report` to [`out_dir`] and prints the standard trailing
/// `wrote <path>` line; the single exit path shared by every `exp_*`
/// binary. Returns the written path.
///
/// # Panics
/// Panics when the file cannot be written.
pub fn emit_json(report: &BenchReport) -> PathBuf {
    let path = report.write();
    println!("wrote {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_escaping() {
        let mut t = Table::new("λ \"sweep\"", &["a"]);
        t.row(vec!["1".into()]);
        let mut r = BenchReport::new("demo");
        r.int("cases", 42)
            .num("ratio", 1.5)
            .num("bad", f64::NAN)
            .text("note", "line1\nline2")
            .table(&t);
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"demo\""), "{json}");
        assert!(json.contains("\"cases\": 42"), "{json}");
        assert!(json.contains("\"ratio\": 1.5"), "{json}");
        assert!(json.contains("\"bad\": null"), "{json}");
        assert!(json.contains("line1\\nline2"), "{json}");
        assert!(
            json.contains("\"title\": \"λ \\\"sweep\\\"\", \"rows\": 1"),
            "{json}"
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn empty_tables_array_stays_valid() {
        let json = BenchReport::new("x").to_json();
        assert!(json.contains("\"tables\": []"), "{json}");
    }

    #[test]
    fn out_dir_defaults_to_the_workspace_root() {
        // Under `cargo test` BENCH_OUT_DIR is normally unset; when a
        // caller exports it the override must win, so only assert the
        // default shape in the clean case.
        if std::env::var_os("BENCH_OUT_DIR").is_none() {
            let dir = out_dir();
            assert!(dir.join("Cargo.toml").is_file(), "{}", dir.display());
            assert!(dir.join("crates").is_dir(), "{}", dir.display());
        }
    }

    #[test]
    fn write_to_creates_the_file() {
        let dir = std::env::temp_dir();
        let mut r = BenchReport::new("report-module-test");
        r.int("ok", 1);
        let path = r.write_to(&dir);
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "BENCH_report-module-test.json"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ok\": 1"));
    }
}
