//! Minimal aligned-text tables for experiment output.

use std::fmt;

/// A simple right-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Raw access to rows (for tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Exports the table as CSV (RFC-4180-ish: cells containing commas
    /// or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        writeln!(f, "{}", header_line.join("  "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", rule.join("  "))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Formats an exact time plus its decimal approximation, e.g. `15/2 (7.50)`.
pub fn fmt_time(t: postal_model::Time) -> String {
    if t.as_ratio().is_integer() {
        format!("{t}")
    } else {
        format!("{t} ({:.2})", t.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::Time;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "time"]);
        t.row(vec!["5".into(), "15/2".into()]);
        t.row(vec!["100".into(), "9".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("  n"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_export_quotes_when_needed() {
        let mut t = Table::new("demo", &["a", "b,с"]);
        t.row(vec!["1".into(), "x\"y".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,\"b,с\"");
        assert_eq!(lines[1], "1,\"x\"\"y\"");
    }

    #[test]
    fn fmt_time_forms() {
        assert_eq!(fmt_time(Time::from_int(4)), "4");
        assert_eq!(fmt_time(Time::new(15, 2)), "15/2 (7.50)");
    }
}
