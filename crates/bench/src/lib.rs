//! # postal-bench
//!
//! Benchmarks and experiments that regenerate every figure and analytic
//! table of Bar-Noy & Kipnis (SPAA 1992) from the implementations in
//! `postal-model`, `postal-sim` and `postal-algos`.
//!
//! * [`experiments`] — one module per experiment id in `DESIGN.md`
//!   (F1, T6, T7, L8, L10–L18, X1–X3 and the ablations); each asserts
//!   the paper's claims while producing a human-readable table.
//! * [`optimal`] — exact exhaustive search for optimal multi-message
//!   broadcast on tiny instances (quantifying the paper's Section 5 gap);
//! * [`report`] — `BENCH_<id>.json` machine-readable summaries every
//!   `exp_*` binary writes for CI;
//! * [`table`] — the minimal text-table formatter used for output.
//!
//! Run `cargo run -p postal-bench --bin exp_all` for the full report, or
//! the individual `exp_*` binaries for one experiment. Criterion micro-
//! benchmarks live under `crates/bench/benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod optimal;
pub mod report;
pub mod table;
