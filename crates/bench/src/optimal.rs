//! Exact lattice-optimal multi-message broadcast, by exhaustive search.
//!
//! Section 5 of the paper: *"This paper leaves a gap between the lower
//! bounds for broadcasting multiple messages and the performance of the
//! algorithms presented in Section 4. We believe that the lower bound of
//! Lemma 8 cannot be substantially improved without changing the
//! model."* This module measures that gap exactly on tiny instances: a
//! breadth-first search over all schedules on the tick lattice finds the
//! true optimal completion time, which can be compared against Lemma 8
//! and against the Section 4 algorithms.
//!
//! Scope and caveats:
//!
//! * Search is restricted to sends starting on the lattice (multiples of
//!   `1/q`). An exchange argument (any send can be advanced to the
//!   earliest feasible instant, which is a lattice point) suggests this
//!   is without loss of generality, as in the single-message case.
//! * By default schedules are *not* required to preserve message order,
//!   so the optimum may beat every order-preserving algorithm; the
//!   [`OrderPolicy::Preserving`] variant restricts the search to the
//!   setting of Mackenzie's lower bound \[13\].
//! * Complexity is exponential; instances are capped by a state budget
//!   and the search returns `None` when it is exceeded.

use postal_model::{Latency, Ratio, Time};
use std::collections::HashSet;

/// One processor's view in a search state: the set of known messages is
/// a bitmask (m ≤ 8).
type Mask = u8;

/// A search state at a fixed tick: what everyone knows, when output
/// ports free up, and what is in flight.
#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    know: Vec<Mask>,
    /// Absolute tick at which each output port frees (clamped to the
    /// current tick during normalization).
    out_free: Vec<u16>,
    /// In-flight deliveries `(dst, msg, deliver_tick)`, sorted.
    inflight: Vec<(u8, u8, u16)>,
}

impl State {
    fn full(&self, all: Mask) -> bool {
        self.know.iter().all(|&k| k == all)
    }

    /// Applies deliveries landing exactly at `t` and clamps ports.
    fn advance_to(&mut self, t: u16) {
        let mut remaining = Vec::with_capacity(self.inflight.len());
        for &(dst, msg, at) in &self.inflight {
            if at <= t {
                self.know[dst as usize] |= 1 << msg;
            } else {
                remaining.push((dst, msg, at));
            }
        }
        self.inflight = remaining;
        for f in &mut self.out_free {
            *f = (*f).max(t);
        }
    }
}

/// The result of an exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchResult {
    /// The lattice-optimal completion time.
    Optimal(Time),
    /// The state budget was exhausted before a solution was proven
    /// optimal.
    BudgetExhausted,
    /// No schedule completes within the horizon (should not happen for
    /// sane horizons).
    HorizonExceeded,
}

/// Whether the searched schedules must deliver messages in index order
/// at every processor (the paper's order-preservation property, and the
/// setting of Mackenzie's lower bound \[13\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderPolicy {
    /// Any delivery order is allowed (the true optimum).
    Any,
    /// Every processor must receive `M_1, …, M_m` in order.
    Preserving,
}

/// Exhaustively searches for the optimal completion time of
/// broadcasting `m` messages in MPS(n, λ), over lattice schedules.
///
/// `horizon` bounds the considered completion times; pass something
/// comfortably above the best known algorithm (e.g. the PIPELINE time).
/// `state_budget` caps total explored states.
///
/// # Panics
/// Panics if `n < 2`, `m == 0`, or `m > 8`.
pub fn optimal_multi_broadcast(
    n: usize,
    m: u32,
    latency: Latency,
    horizon: Time,
    state_budget: usize,
) -> SearchResult {
    optimal_multi_broadcast_with(n, m, latency, horizon, state_budget, OrderPolicy::Any)
}

/// [`optimal_multi_broadcast`] with an explicit [`OrderPolicy`].
///
/// # Panics
/// Panics if `n < 2`, `m == 0`, or `m > 8`.
pub fn optimal_multi_broadcast_with(
    n: usize,
    m: u32,
    latency: Latency,
    horizon: Time,
    state_budget: usize,
    order: OrderPolicy,
) -> SearchResult {
    assert!(n >= 2, "search needs at least two processors");
    assert!((1..=8).contains(&m), "message count must be in 1..=8");
    let q = latency.ticks_per_unit() as u16;
    let p = latency.lambda_ticks() as u16;
    let all: Mask = ((1u16 << m) - 1) as Mask;
    let horizon_ticks = (horizon.as_ratio() * Ratio::from_int(q as i128)).ceil() as u16;

    let mut start = State {
        know: vec![0; n],
        out_free: vec![0; n],
        inflight: Vec::new(),
    };
    start.know[0] = all;

    let mut frontier: HashSet<State> = HashSet::new();
    frontier.insert(start);
    let mut explored = 0usize;

    for t in 0..=horizon_ticks {
        // Normalize and test goal at this tick.
        let mut normalized: HashSet<State> = HashSet::with_capacity(frontier.len());
        for mut s in frontier.drain() {
            s.advance_to(t);
            if s.full(all) {
                return SearchResult::Optimal(Time(Ratio::new(t as i128, q as i128)));
            }
            normalized.insert(s);
        }

        // Expand: all combinations of sends starting at tick t.
        let mut next: HashSet<State> = HashSet::new();
        for s in &normalized {
            explored += 1;
            if explored > state_budget {
                return SearchResult::BudgetExhausted;
            }
            expand(s, t, p, q, n, order, &mut next);
        }
        frontier = next;
    }
    SearchResult::HorizonExceeded
}

/// Recursively assigns an action (idle or one send) to every free
/// sender, collecting the resulting states.
fn expand(
    s: &State,
    t: u16,
    p: u16,
    q: u16,
    n: usize,
    order: OrderPolicy,
    out: &mut HashSet<State>,
) {
    let free: Vec<usize> = (0..n).filter(|&i| s.out_free[i] <= t).collect();
    let mut scratch = s.clone();
    assign(&free, 0, &mut scratch, t, p, q, n, order, out);
}

#[allow(clippy::too_many_arguments)]
fn assign(
    free: &[usize],
    idx: usize,
    s: &mut State,
    t: u16,
    p: u16,
    q: u16,
    n: usize,
    order: OrderPolicy,
    out: &mut HashSet<State>,
) {
    if idx == free.len() {
        out.insert(s.clone());
        return;
    }
    let sender = free[idx];
    // Option 1: idle.
    assign(free, idx + 1, s, t, p, q, n, order, out);
    // Option 2: send one (msg, dst).
    let my_know = s.know[sender];
    for msg in 0..8u8 {
        if my_know & (1 << msg) == 0 {
            continue;
        }
        for dst in 0..n {
            if dst == sender || s.know[dst] & (1 << msg) != 0 {
                continue;
            }
            // Useless-duplicate pruning: dst already has this message in
            // flight.
            if s.inflight
                .iter()
                .any(|&(d, mm, _)| d as usize == dst && mm == msg)
            {
                continue;
            }
            // Order preservation: dst may only be sent its next expected
            // message index (its knowledge plus in-flight deliveries form
            // a prefix by induction, and in-flight delivers to dst are
            // strictly increasing because the port rule separates them).
            if order == OrderPolicy::Preserving {
                let pending: Mask = s
                    .inflight
                    .iter()
                    .filter(|&&(d, _, _)| d as usize == dst)
                    .fold(0, |acc, &(_, mm, _)| acc | (1 << mm));
                let have = s.know[dst] | pending;
                let next_expected = have.trailing_ones() as u8;
                if msg != next_expected {
                    continue;
                }
            }
            // Input-port feasibility: the new receive window conflicts
            // with another delivery to dst closer than one unit.
            let deliver = t + p;
            if s.inflight
                .iter()
                .any(|&(d, _, at)| d as usize == dst && at.abs_diff(deliver) < q)
            {
                continue;
            }
            // Commit, recurse, undo.
            let old_free = s.out_free[sender];
            s.out_free[sender] = t + q;
            s.inflight.push((dst as u8, msg, deliver));
            s.inflight.sort_unstable();
            assign(free, idx + 1, s, t, p, q, n, order, out);
            let pos = s
                .inflight
                .iter()
                .position(|&e| e == (dst as u8, msg, deliver))
                .expect("just inserted");
            s.inflight.remove(pos);
            s.out_free[sender] = old_free;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::runtimes;

    fn search(n: usize, m: u32, lam: Latency) -> SearchResult {
        // Horizon: the best Section-4 algorithm plus slack.
        let ub = runtimes::pipeline_time(n as u128, m as u64, lam)
            .min(runtimes::repeat_time(n as u128, m as u64, lam))
            .min(runtimes::pack_time(n as u128, m as u64, lam));
        optimal_multi_broadcast(n, m, lam, ub, 4_000_000)
    }

    #[test]
    fn single_message_optimum_is_theorem6() {
        // m = 1: the search must rediscover f_λ(n).
        for lam in [Latency::TELEPHONE, Latency::from_int(2)] {
            for n in [2usize, 3, 4, 5] {
                assert_eq!(
                    search(n, 1, lam),
                    SearchResult::Optimal(runtimes::bcast_time(n as u128, lam)),
                    "λ={lam} n={n}"
                );
            }
        }
    }

    #[test]
    fn two_processors_hit_the_lemma8_bound() {
        // n = 2: the root just streams; optimum = (m−1) + λ = Lemma 8.
        for lam in [
            Latency::TELEPHONE,
            Latency::from_int(2),
            Latency::from_ratio(5, 2),
        ] {
            for m in [1u32, 2, 3] {
                assert_eq!(
                    search(2, m, lam),
                    SearchResult::Optimal(runtimes::multi_lower_bound(2, m as u64, lam)),
                    "λ={lam} m={m}"
                );
            }
        }
    }

    #[test]
    fn tiny_budget_reports_exhaustion() {
        let res = optimal_multi_broadcast(
            4,
            3,
            Latency::from_int(2),
            postal_model::Time::from_int(12),
            3,
        );
        assert_eq!(res, SearchResult::BudgetExhausted);
    }

    #[test]
    fn short_horizon_reports_exceeded() {
        // The optimum for (3, 2, λ=2) is 4; a horizon of 2 cannot reach it.
        let res = optimal_multi_broadcast(
            3,
            2,
            Latency::from_int(2),
            postal_model::Time::from_int(2),
            1_000_000,
        );
        assert_eq!(res, SearchResult::HorizonExceeded);
    }

    #[test]
    fn ordered_optimum_never_beats_unordered() {
        for (n, m, lam) in [
            (3usize, 2u32, Latency::from_int(2)),
            (4, 2, Latency::TELEPHONE),
        ] {
            let horizon = runtimes::repeat_time(n as u128, m as u64, lam);
            let any = optimal_multi_broadcast_with(n, m, lam, horizon, 2_000_000, OrderPolicy::Any);
            let ord = optimal_multi_broadcast_with(
                n,
                m,
                lam,
                horizon,
                2_000_000,
                OrderPolicy::Preserving,
            );
            if let (SearchResult::Optimal(a), SearchResult::Optimal(o)) = (any, ord) {
                assert!(o >= a, "ordered {o} < unordered {a}");
            } else {
                panic!("both searches must resolve on these instances");
            }
        }
    }

    #[test]
    fn optimum_between_lemma8_and_best_algorithm() {
        for (n, m, lam) in [
            (3usize, 2u32, Latency::TELEPHONE),
            (3, 2, Latency::from_int(2)),
            (4, 2, Latency::TELEPHONE),
            (3, 3, Latency::from_int(2)),
        ] {
            let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
            let best_alg = runtimes::pipeline_time(n as u128, m as u64, lam)
                .min(runtimes::repeat_time(n as u128, m as u64, lam))
                .min(runtimes::pack_time(n as u128, m as u64, lam))
                .min(runtimes::line_time(n as u128, m as u64, lam))
                .min(runtimes::star_time(n as u128, m as u64, lam));
            match search(n, m, lam) {
                SearchResult::Optimal(opt) => {
                    assert!(opt >= lb, "optimum {opt} below Lemma 8 {lb}!");
                    assert!(
                        opt <= best_alg,
                        "search missed the known algorithm: {opt} > {best_alg}"
                    );
                }
                other => panic!("search failed: {other:?} for n={n} m={m} λ={lam}"),
            }
        }
    }
}
