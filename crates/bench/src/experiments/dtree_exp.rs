//! Experiment L18: the DTREE(d) family — simulated times against the
//! Lemma 18 bound, and the Section 4.3 degree-choice discussion.

use crate::table::{fmt_time, Table};
use postal_algos::run_dtree;
use postal_model::{runtimes, Latency, Time};

/// Simulated DTREE(d) vs the Lemma 18 bound across degrees.
pub fn bound_check() -> Table {
    let mut table = Table::new(
        "L18: DTREE(d) simulated vs bound d(m−1) + (d−1+λ)⌈log_d n⌉",
        &["n", "m", "λ", "d", "simulated", "Lemma 18 bound"],
    );
    for lam in [
        Latency::TELEPHONE,
        Latency::from_ratio(5, 2),
        Latency::from_int(4),
    ] {
        for (n, m) in [(15usize, 2u32), (31, 4), (64, 8)] {
            for d in [1u64, 2, 3, 4, 8, (n - 1) as u64] {
                let r = run_dtree(n, m, lam, d);
                r.verify().unwrap();
                let bound = runtimes::dtree_time_bound(n as u128, m as u64, lam, d as u128);
                assert!(r.completion() <= bound, "n={n} m={m} λ={lam} d={d}");
                table.row(vec![
                    n.to_string(),
                    m.to_string(),
                    lam.to_string(),
                    d.to_string(),
                    fmt_time(r.completion()),
                    fmt_time(bound),
                ]);
            }
        }
    }
    table
}

/// Section 4.3's degree discussion: sweep d and compare the empirical
/// best degree with the paper's ⌈λ⌉+1 rule.
pub fn degree_sweep(n: usize, m: u32, lam: Latency) -> Table {
    let mut table = Table::new(
        format!(
            "Degree sweep for n={n}, m={m}, λ={lam}: best d vs paper's d=⌈λ⌉+1={}",
            runtimes::latency_matched_degree(n as u128, lam)
        ),
        &["d", "simulated", "T/LB"],
    );
    let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam)
        .to_f64()
        .max(1e-9);
    for d in 1..n as u64 {
        let r = run_dtree(n, m, lam, d);
        r.verify().unwrap();
        table.row(vec![
            d.to_string(),
            fmt_time(r.completion()),
            format!("{:.2}", r.completion().to_f64() / lb),
        ]);
    }
    table
}

/// The empirical best degree for a configuration.
pub fn best_degree(n: usize, m: u32, lam: Latency) -> (u64, Time) {
    (1..n as u64)
        .map(|d| (d, run_dtree(n, m, lam, d).completion()))
        .min_by_key(|&(_, t)| t)
        .expect("n ≥ 2 has at least degree 1")
}

/// Section 4.3 claim (with \[13\]): the DTREE family — best d per
/// configuration — stays within a small constant factor of the Lemma 8
/// lower bound (≤ 7 for order-preserving broadcast).
pub fn constant_factor_table() -> Table {
    let mut table = Table::new(
        "X1b: best-degree DTREE vs lower bound (constant-factor claim of [13])",
        &["n", "m", "λ", "best d", "⌈λ⌉+1", "T(best)", "T/LB"],
    );
    for lam in [
        Latency::TELEPHONE,
        Latency::from_ratio(5, 2),
        Latency::from_int(4),
        Latency::from_int(16),
    ] {
        for (n, m) in [
            (16usize, 1u32),
            (16, 16),
            (64, 4),
            (64, 64),
            (128, 2),
            (128, 32),
        ] {
            let (d, t) = best_degree(n, m, lam);
            let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
            let factor = t.to_f64() / lb.to_f64().max(1e-9);
            assert!(
                factor <= 7.0 + 1e-9,
                "DTREE exceeded the factor-7 envelope: n={n} m={m} λ={lam} factor={factor}"
            );
            table.row(vec![
                n.to_string(),
                m.to_string(),
                lam.to_string(),
                d.to_string(),
                runtimes::latency_matched_degree(n as u128, lam).to_string(),
                fmt_time(t),
                format!("{factor:.2}"),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_check_populates() {
        assert_eq!(bound_check().len(), 3 * 3 * 6);
    }

    #[test]
    fn degree_sweep_has_n_minus_2_rows() {
        let t = degree_sweep(16, 4, Latency::from_ratio(5, 2));
        assert_eq!(t.len(), 15);
    }

    #[test]
    fn best_degree_is_line_for_many_messages() {
        let (d, _) = best_degree(8, 64, Latency::from_int(2));
        assert_eq!(d, 1, "LINE wins as m → ∞");
    }

    #[test]
    fn best_degree_is_star_for_huge_latency() {
        let (d, _) = best_degree(8, 1, Latency::from_int(64));
        assert_eq!(d, 7, "STAR wins as λ → ∞");
    }

    #[test]
    fn constant_factor_holds() {
        let t = constant_factor_table();
        assert_eq!(t.len(), 24);
    }
}
