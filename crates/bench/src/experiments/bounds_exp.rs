//! Experiment T7: the Theorem 7 sandwich bounds on `F_λ(t)` and `f_λ(n)`
//! plus the appendix's asymptotic refinements (Lemmas 25/26).

use crate::table::Table;
use postal_model::bounds;
use postal_model::{GenFib, Latency, Time};

/// Theorem 7(1): `(⌈λ⌉+1)^⌊t/2λ⌋ ≤ F_λ(t) ≤ (⌈λ⌉+1)^⌊t/λ⌋`.
pub fn fib_bounds() -> Table {
    let mut table = Table::new(
        "T7(1): bounds on the generalized Fibonacci function F_λ(t)",
        &["λ", "t", "lower", "F_λ(t)", "upper"],
    );
    for lam in [
        Latency::TELEPHONE,
        Latency::from_ratio(5, 2),
        Latency::from_int(4),
        Latency::from_int(10),
    ] {
        let g = GenFib::new(lam);
        for t in [0i128, 5, 10, 20, 40, 80] {
            let tt = Time::from_int(t);
            let (lo, v, hi) = (
                bounds::fib_lower_bound(tt, lam),
                g.value(tt),
                bounds::fib_upper_bound(tt, lam),
            );
            assert!(lo <= v && v <= hi);
            table.row(vec![
                lam.to_string(),
                t.to_string(),
                lo.to_string(),
                v.to_string(),
                hi.to_string(),
            ]);
        }
    }
    table
}

/// Theorem 7(2): `λ log n / log(⌈λ⌉+1) ≤ f_λ(n) ≤ 2λ + 2λ log n / log(⌈λ⌉+1)`.
pub fn index_bounds() -> Table {
    let mut table = Table::new(
        "T7(2): bounds on the index function f_λ(n); ratio = f/lower shows the ≤2 gap",
        &["λ", "n", "lower", "f_λ(n)", "upper", "f/lower"],
    );
    for lam in [
        Latency::TELEPHONE,
        Latency::from_ratio(5, 2),
        Latency::from_int(4),
        Latency::from_int(10),
    ] {
        let g = GenFib::new(lam);
        for n in [2u128, 16, 256, 4096, 1 << 20, 1 << 40] {
            let f = g.index(n).to_f64();
            let lo = bounds::index_lower_bound(n, lam);
            let hi = bounds::index_upper_bound(n, lam);
            assert!(lo <= f + 1e-9 && f <= hi + 1e-9);
            table.row(vec![
                lam.to_string(),
                n.to_string(),
                format!("{lo:.2}"),
                format!("{f:.2}"),
                format!("{hi:.2}"),
                format!("{:.3}", f / lo.max(1e-9)),
            ]);
        }
    }
    table
}

/// Theorem 7(3)/(4): the large-λ asymptotic bounds of Lemmas 25/26 close
/// most of the factor-2 gap noted in Section 5.
pub fn asymptotic_bounds() -> Table {
    let mut table = Table::new(
        "T7(3,4): asymptotic refinement (large λ): f_λ(n) vs simple and Lemma 26 bounds",
        &["λ", "n", "f_λ(n)", "simple upper", "Lemma 26 upper", "α"],
    );
    for lam_i in [30i128, 100, 1000, 100_000] {
        let lam = Latency::from_int(lam_i);
        let g = GenFib::new(lam);
        let alpha = bounds::lemma25_alpha(lam).expect("λ ≥ 16 is in the gated regime");
        for n in [1u128 << 40, 1 << 90, 1 << 120] {
            let f = g.index(n).to_f64();
            let simple = bounds::index_upper_bound(n, lam);
            let asym = bounds::index_asymptotic_upper_bound(n, lam)
                .expect("λ ≥ 16 is in the gated regime");
            assert!(f <= simple + 1e-6 && f <= asym + 1e-6);
            table.row(vec![
                lam.to_string(),
                format!("2^{}", n.ilog2()),
                format!("{f:.0}"),
                format!("{simple:.0}"),
                format!("{asym:.0}"),
                format!("{alpha:.3}"),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bounds_tables_populate() {
        assert_eq!(fib_bounds().len(), 24);
        assert_eq!(index_bounds().len(), 24);
        assert_eq!(asymptotic_bounds().len(), 12);
    }

    #[test]
    fn index_ratio_stays_under_upper_gap() {
        // The f/lower ratio in T7(2) must respect the theorem: at most
        // 2 + 2λ/lower (finite slack); spot-check it stays under 3 on
        // this grid for n ≥ 16.
        let table = index_bounds();
        for row in table.rows() {
            let n: u128 = row[1].parse().unwrap();
            if n >= 16 {
                let ratio: f64 = row[5].parse().unwrap();
                assert!(ratio < 3.0, "row {row:?}");
            }
        }
    }
}
