//! Experiment X5: the Section 5 gap — Lemma 8's lower bound vs the true
//! (lattice) optimum vs the best Section 4 algorithm, on instances small
//! enough for exhaustive search.

use crate::optimal::{optimal_multi_broadcast_with, OrderPolicy, SearchResult};
use crate::table::{fmt_time, Table};
use postal_model::{runtimes, Latency, Time};

/// Best closed-form Section-4 algorithm time for an instance.
pub fn best_section4(n: u128, m: u64, lam: Latency) -> (&'static str, Time) {
    [
        ("REPEAT", runtimes::repeat_time(n, m, lam)),
        ("PACK", runtimes::pack_time(n, m, lam)),
        ("PIPELINE", runtimes::pipeline_time(n, m, lam)),
        ("LINE", runtimes::line_time(n, m, lam)),
        ("STAR", runtimes::star_time(n, m, lam)),
    ]
    .into_iter()
    .min_by_key(|&(_, t)| t)
    .expect("nonempty candidate set")
}

/// The instances searched exhaustively (kept small; the search is
/// exponential).
pub fn instances() -> Vec<(usize, u32, Latency)> {
    vec![
        (2, 3, Latency::from_int(2)),
        (3, 2, Latency::TELEPHONE),
        (3, 2, Latency::from_int(2)),
        (3, 2, Latency::from_ratio(5, 2)),
        (3, 3, Latency::TELEPHONE),
        (3, 3, Latency::from_int(2)),
        (4, 2, Latency::TELEPHONE),
        (4, 2, Latency::from_int(2)),
        (4, 3, Latency::TELEPHONE),
        (5, 2, Latency::TELEPHONE),
    ]
}

/// Builds the gap table. Every row asserts
/// `Lemma 8 ≤ optimum ≤ best algorithm`.
pub fn gap_table(state_budget: usize) -> Table {
    let mut table = Table::new(
        "X5: Lemma 8 LB vs exact optima (any order / order-preserving) vs best §4 algorithm",
        &[
            "n",
            "m",
            "λ",
            "Lemma 8",
            "optimum",
            "ordered opt",
            "best §4 (name)",
            "opt/LB",
            "alg/ordered",
        ],
    );
    for (n, m, lam) in instances() {
        let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
        let (alg_name, alg) = best_section4(n as u128, m as u64, lam);
        let run = |policy| {
            match optimal_multi_broadcast_with(n, m, lam, alg, state_budget, policy) {
                SearchResult::Optimal(t) => (fmt_time(t), Some(t)),
                SearchResult::BudgetExhausted => ("budget".to_string(), None),
                // The best algorithm's time IS achievable (and REPEAT/PACK/
                // PIPELINE/DTREE all preserve order), so an exceeded
                // horizon proves nothing better exists below it.
                SearchResult::HorizonExceeded => (format!("{} (=alg)", fmt_time(alg)), Some(alg)),
            }
        };
        let (opt_str, opt) = run(OrderPolicy::Any);
        let (ord_str, ord) = run(OrderPolicy::Preserving);
        if let Some(opt) = opt {
            assert!(opt >= lb, "optimum below Lemma 8?!");
            assert!(opt <= alg, "search inconsistent with known algorithm");
        }
        if let (Some(opt), Some(ord)) = (opt, ord) {
            assert!(ord >= opt, "order preservation cannot help");
            assert!(ord <= alg, "§4 algorithms are order-preserving");
        }
        table.row(vec![
            n.to_string(),
            m.to_string(),
            lam.to_string(),
            fmt_time(lb),
            opt_str,
            ord_str,
            format!("{} ({alg_name})", fmt_time(alg)),
            opt.map(|o| format!("{:.3}", o.to_f64() / lb.to_f64()))
                .unwrap_or_else(|| "—".into()),
            ord.map(|o| format!("{:.3}", alg.to_f64() / o.to_f64()))
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_table_populates_with_small_budget() {
        let t = gap_table(2_000_000);
        assert_eq!(t.len(), instances().len());
        // At least the n=2 and n=3 rows must resolve to an exact optimum.
        let resolved = t.rows().iter().filter(|r| r[7] != "—").count();
        assert!(resolved >= 6, "only {resolved} instances resolved");
    }

    #[test]
    fn lemma8_is_tight_for_n2() {
        let t = gap_table(500_000);
        for row in t.rows().iter().filter(|r| r[0] == "2") {
            assert_eq!(row[7], "1.000", "n=2 must meet Lemma 8: {row:?}");
        }
    }
}
