//! Experiment implementations, one module per DESIGN.md experiment id.
//!
//! Each function builds its result table(s) and *asserts the paper's
//! claims along the way* — running an experiment is itself a test. The
//! `exp_*` binaries are thin printers over these functions.

pub mod ablations;
pub mod bounds_exp;
pub mod crossover;
pub mod dtree_exp;
pub mod extensions_exp;
pub mod gap_exp;
pub mod jitter_exp;
pub mod multi_exp;
pub mod single;
