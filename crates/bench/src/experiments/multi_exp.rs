//! Experiments L8/L10/L12/L14/L16: multi-message algorithms versus their
//! closed forms and the Lemma 8 lower bound.

use crate::table::{fmt_time, Table};
use postal_algos::{run_pack, run_pipeline, run_repeat, run_repeat_greedy};
use postal_model::{runtimes, Latency};

/// The (n, m, λ) grid shared by the multi-message experiments.
pub fn grid() -> Vec<(usize, u32, Latency)> {
    let mut g = Vec::new();
    for lam in [
        Latency::TELEPHONE,
        Latency::from_int(2),
        Latency::from_ratio(5, 2),
        Latency::from_int(4),
    ] {
        for n in [5usize, 14, 64] {
            for m in [1u32, 2, 4, 8, 16] {
                g.push((n, m, lam));
            }
        }
    }
    g
}

/// Experiments L10/L12/L14/L16: for each algorithm, simulated completion
/// must equal the lemma's closed form *exactly*; the table shows both
/// plus the ratio to the Lemma 8 lower bound.
pub fn closed_forms() -> Table {
    let mut table = Table::new(
        "L10/L12/L14+L16: simulated vs closed-form running times (exact equality)",
        &[
            "n",
            "m",
            "λ",
            "algorithm",
            "simulated",
            "closed form",
            "T/LB",
        ],
    );
    for (n, m, lam) in grid() {
        let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
        let cases: Vec<(&str, postal_model::Time, postal_model::Time)> = vec![
            (
                "REPEAT",
                run_repeat(n, m, lam).completion(),
                runtimes::repeat_time(n as u128, m as u64, lam),
            ),
            (
                "PACK",
                run_pack(n, m, lam).completion(),
                runtimes::pack_time(n as u128, m as u64, lam),
            ),
            (
                "PIPELINE",
                run_pipeline(n, m, lam).completion(),
                runtimes::pipeline_time(n as u128, m as u64, lam),
            ),
        ];
        for (name, simulated, closed) in cases {
            assert_eq!(simulated, closed, "{name} n={n} m={m} λ={lam}");
            table.row(vec![
                n.to_string(),
                m.to_string(),
                lam.to_string(),
                name.to_string(),
                fmt_time(simulated),
                fmt_time(closed),
                format!("{:.2}", simulated.to_f64() / lb.to_f64().max(1e-9)),
            ]);
        }
    }
    table
}

/// Experiment L8: every algorithm respects the lower bound
/// `(m−1) + f_λ(n)`; the table reports each algorithm's overhead factor.
pub fn lower_bound_factors() -> Table {
    let mut table = Table::new(
        "L8: lower bound (m−1)+f_λ(n) and per-algorithm overhead factors",
        &["n", "m", "λ", "LB", "REPEAT/LB", "PACK/LB", "PIPELINE/LB"],
    );
    for (n, m, lam) in grid() {
        let lb = runtimes::multi_lower_bound(n as u128, m as u64, lam);
        let lbf = lb.to_f64().max(1e-9);
        let rep = runtimes::repeat_time(n as u128, m as u64, lam);
        let pac = runtimes::pack_time(n as u128, m as u64, lam);
        let pip = runtimes::pipeline_time(n as u128, m as u64, lam);
        for t in [rep, pac, pip] {
            assert!(t >= lb, "algorithm beat the lower bound?!");
        }
        table.row(vec![
            n.to_string(),
            m.to_string(),
            lam.to_string(),
            fmt_time(lb),
            format!("{:.2}", rep.to_f64() / lbf),
            format!("{:.2}", pac.to_f64() / lbf),
            format!("{:.2}", pip.to_f64() / lbf),
        ]);
    }
    table
}

/// Ablation: the paper-paced REPEAT vs the greedy event-driven variant
/// (which exploits originator idle time; see `postal_algos::repeat`).
pub fn repeat_pacing_ablation() -> Table {
    let mut table = Table::new(
        "Ablation: REPEAT pacing — Lemma 10 schedule vs greedy event-driven",
        &["n", "m", "λ", "Lemma 10", "greedy", "saved"],
    );
    for lam in [
        Latency::from_ratio(3, 2),
        Latency::from_ratio(5, 2),
        Latency::from_int(3),
    ] {
        for (n, m) in [(5usize, 8u32), (14, 8), (40, 16)] {
            let paper = run_repeat(n, m, lam).completion();
            let greedy = run_repeat_greedy(n, m, lam).completion();
            assert!(greedy <= paper);
            table.row(vec![
                n.to_string(),
                m.to_string(),
                lam.to_string(),
                fmt_time(paper),
                fmt_time(greedy),
                fmt_time(paper - greedy),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_table_covers_grid() {
        let t = closed_forms();
        assert_eq!(t.len(), grid().len() * 3);
    }

    #[test]
    fn lower_bound_factors_table_covers_grid() {
        let t = lower_bound_factors();
        assert_eq!(t.len(), grid().len());
        // Factors are ≥ 1 by construction.
        for row in t.rows() {
            for col in 4..=6 {
                let f: f64 = row[col].parse().unwrap();
                assert!(f >= 0.99, "row {row:?}");
            }
        }
    }

    #[test]
    fn greedy_saves_time_somewhere() {
        let t = repeat_pacing_ablation();
        let saved_any = t.rows().iter().any(|r| r[5] != "0");
        assert!(saved_any, "greedy should beat Lemma 10 pacing somewhere");
    }
}
