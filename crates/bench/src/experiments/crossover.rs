//! Experiment X1: which algorithm wins where — the crossover structure
//! Section 4 predicts (REPEAT for tiny m, PACK for small m / large λ,
//! PIPELINE for long streams, DTREE as the robust all-rounder).

use crate::table::Table;
use postal_model::{runtimes, Latency, Time};

/// The candidate algorithms compared in the winner map (closed forms —
/// each was already shown to match simulation exactly in `multi_exp`).
pub fn candidates(n: u128, m: u64, lam: Latency) -> Vec<(&'static str, Time)> {
    let d = runtimes::latency_matched_degree(n, lam) as u128;
    vec![
        ("REPEAT", runtimes::repeat_time(n, m, lam)),
        ("PACK", runtimes::pack_time(n, m, lam)),
        ("PIPELINE", runtimes::pipeline_time(n, m, lam)),
        ("LINE", runtimes::line_time(n, m, lam)),
        ("STAR", runtimes::star_time(n, m, lam)),
        // DTREE at the paper's degree: Lemma 18 upper bound (conservative
        // for the winner map; the simulated value is lower still).
        ("DTREE(⌈λ⌉+1)", runtimes::dtree_time_bound(n, m, lam, d)),
    ]
}

/// The winner for one configuration.
pub fn winner(n: u128, m: u64, lam: Latency) -> (&'static str, Time) {
    candidates(n, m, lam)
        .into_iter()
        .min_by_key(|&(_, t)| t)
        .expect("candidate list is nonempty")
}

/// A winner map over (m, λ) for fixed n.
pub fn winner_map(n: u128) -> Table {
    let lambdas = [
        Latency::TELEPHONE,
        Latency::from_int(2),
        Latency::from_int(4),
        Latency::from_int(8),
        Latency::from_int(16),
        Latency::from_int(32),
    ];
    let mut headers: Vec<String> = vec!["m \\ λ".into()];
    headers.extend(lambdas.iter().map(|l| l.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("X1: winning algorithm over (m, λ), n = {n}"),
        &header_refs,
    );
    for m in [1u64, 2, 4, 8, 16, 64, 256] {
        let mut row = vec![m.to_string()];
        for lam in lambdas {
            row.push(winner(n, m, lam).0.to_string());
        }
        table.row(row);
    }
    table
}

/// Crossover locator: for fixed n and λ, the m at which PIPELINE
/// overtakes PACK (Section 4.2's "for large m none of the BCAST
/// generalizations stay optimal" discussion).
pub fn pack_pipeline_crossover(n: u128, lam: Latency) -> Option<u64> {
    let mut prev_pack_wins = true;
    for m in 1..=512u64 {
        let pack = runtimes::pack_time(n, m, lam);
        let pipe = runtimes::pipeline_time(n, m, lam);
        let pack_wins = pack <= pipe;
        if prev_pack_wins && !pack_wins {
            return Some(m);
        }
        prev_pack_wins = pack_wins;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_wins_for_tiny_m_huge_lambda() {
        // λ ≫ n: one round of direct sends is unbeatable for m = 1
        // among these candidates... for m = 1 REPEAT = PACK = PIPELINE
        // = BCAST = f_λ(n), and f_λ(n) ≤ star; at λ = 32, n = 8:
        // f = 32·⌈log_9 8⌉-ish vs star = 7−1+32 = 38. Check the winner is
        // one of the optimal-for-m=1 trio.
        let (name, t) = winner(8, 1, Latency::from_int(32));
        assert_eq!(t, runtimes::bcast_time(8, Latency::from_int(32)).min(t));
        assert!(["REPEAT", "PACK", "PIPELINE", "STAR"].contains(&name));
    }

    #[test]
    fn line_or_pipeline_wins_for_many_messages() {
        let (name, _) = winner(8, 256, Latency::from_int(2));
        assert!(
            name == "LINE" || name == "PIPELINE",
            "streaming must win as m → ∞, got {name}"
        );
    }

    #[test]
    fn winner_map_is_full() {
        let t = winner_map(64);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn crossover_exists_for_moderate_latency() {
        // With λ = 8, PACK wins small m but PIPELINE must overtake.
        let m = pack_pipeline_crossover(64, Latency::from_int(8));
        assert!(m.is_some());
        assert!(m.unwrap() > 1);
    }

    #[test]
    fn all_candidates_beat_nothing_below_lower_bound() {
        for lam in [Latency::TELEPHONE, Latency::from_int(4)] {
            for m in [1u64, 8, 64] {
                let lb = runtimes::multi_lower_bound(64, m, lam);
                for (name, t) in candidates(64, m, lam) {
                    assert!(t >= lb, "{name} beat the lower bound");
                }
            }
        }
    }
}
