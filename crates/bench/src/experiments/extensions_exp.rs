//! Experiment X3: the Section 5 extensions — adaptive λ, hierarchical λ,
//! and the other collectives (combine, gossip, scatter).

use crate::table::{fmt_time, Table};
use postal_algos::ext::{adaptive, allreduce, alltoall, combine, gather, gossip, hier, scatter};
use postal_model::{runtimes, Latency, Time};
use postal_sim::TimeVarying;

/// Adaptive vs static broadcast under shifting λ profiles.
pub fn adaptive_table() -> Table {
    let mut table = Table::new(
        "X3a: time-varying λ — adaptive re-planning vs static trees (queued ports)",
        &[
            "profile",
            "n",
            "static(λ₀)",
            "adaptive",
            "oracle-best-static",
        ],
    );
    let profiles: Vec<(&str, TimeVarying, Latency)> = vec![
        (
            "drop 8→1 @t=2",
            TimeVarying::new(vec![
                (Time::ZERO, Latency::from_int(8)),
                (Time::from_int(2), Latency::TELEPHONE),
            ]),
            Latency::from_int(8),
        ),
        (
            "rise 1→6 @t=2",
            TimeVarying::new(vec![
                (Time::ZERO, Latency::TELEPHONE),
                (Time::from_int(2), Latency::from_int(6)),
            ]),
            Latency::TELEPHONE,
        ),
        (
            "spike 2→10→2",
            TimeVarying::new(vec![
                (Time::ZERO, Latency::from_int(2)),
                (Time::from_int(3), Latency::from_int(10)),
                (Time::from_int(9), Latency::from_int(2)),
            ]),
            Latency::from_int(2),
        ),
    ];
    for (name, profile, assumed) in profiles {
        for n in [50usize, 200] {
            let stat = adaptive::run_static_under_profile(n, assumed, &profile);
            assert!(adaptive::delivered_everywhere(&stat, n));
            let adap = adaptive::run_adaptive(n, &profile);
            assert!(adaptive::delivered_everywhere(&adap, n));
            // Oracle: the best single-λ static tree in hindsight.
            let oracle = [
                Latency::TELEPHONE,
                Latency::from_int(2),
                Latency::from_int(4),
                Latency::from_int(6),
                Latency::from_int(8),
                Latency::from_int(10),
            ]
            .iter()
            .map(|&l| adaptive::run_static_under_profile(n, l, &profile).completion)
            .min()
            .expect("nonempty oracle sweep");
            table.row(vec![
                name.to_string(),
                n.to_string(),
                fmt_time(stat.completion),
                fmt_time(adap.completion),
                fmt_time(oracle),
            ]);
        }
    }
    table
}

/// Hierarchical two-phase broadcast vs a flat λ_remote tree.
pub fn hierarchy_table() -> Table {
    let mut table = Table::new(
        "X3b: two-level latency hierarchy — two-phase vs flat broadcast",
        &[
            "n",
            "clusters×size",
            "λ_local",
            "λ_remote",
            "flat",
            "hierarchical",
        ],
    );
    for (n, cs, local, remote) in [
        (64usize, 8usize, Latency::TELEPHONE, Latency::from_int(8)),
        (64, 8, Latency::TELEPHONE, Latency::from_int(16)),
        (100, 10, Latency::from_int(2), Latency::from_int(10)),
        (60, 4, Latency::TELEPHONE, Latency::from_int(4)),
    ] {
        let flat = hier::run_flat_under_hierarchy(n, cs, local, remote);
        let two_phase = hier::run_hierarchical(n, cs, local, remote);
        assert!(hier::delivered_everywhere(&flat, n));
        assert!(hier::delivered_everywhere(&two_phase, n));
        table.row(vec![
            n.to_string(),
            format!("{}×{}", n.div_ceil(cs), cs),
            local.to_string(),
            remote.to_string(),
            fmt_time(flat.completion),
            fmt_time(two_phase.completion),
        ]);
    }
    table
}

/// The other collectives: combine (= f_λ(n), optimal), gossip
/// (gather + pipeline), scatter (= n−2+λ, optimal).
pub fn collectives_table() -> Table {
    let mut table = Table::new(
        "X3c: other collectives in the postal model",
        &["collective", "n", "λ", "completion", "reference"],
    );
    for lam in [Latency::from_ratio(5, 2), Latency::from_int(4)] {
        for n in [14usize, 64] {
            let values: Vec<u64> = (0..n as u64).collect();

            let c = combine::run_combine(&values, lam);
            c.report.assert_model_clean();
            assert_eq!(c.report.completion, runtimes::bcast_time(n as u128, lam));
            table.row(vec![
                "COMBINE".into(),
                n.to_string(),
                lam.to_string(),
                fmt_time(c.report.completion),
                format!(
                    "= f_λ(n) = {}",
                    fmt_time(runtimes::bcast_time(n as u128, lam))
                ),
            ]);

            let g = gossip::run_gossip(&values, lam);
            assert!(g.complete(&values));
            table.row(vec![
                "GOSSIP".into(),
                n.to_string(),
                lam.to_string(),
                fmt_time(g.report.completion),
                format!(
                    "= (n−2)+λ+T_PL = {}",
                    fmt_time(gossip::gossip_time(n as u128, lam))
                ),
            ]);

            let s = scatter::run_scatter(&values, lam);
            s.assert_model_clean();
            assert_eq!(s.completion, scatter::scatter_lower_bound(n as u128, lam));
            table.row(vec![
                "SCATTER".into(),
                n.to_string(),
                lam.to_string(),
                fmt_time(s.completion),
                format!(
                    "= (n−2)+λ = {} (optimal)",
                    fmt_time(scatter::scatter_lower_bound(n as u128, lam))
                ),
            ]);

            let g2 = gather::run_gather(&values, lam);
            g2.report.assert_model_clean();
            assert_eq!(
                g2.report.completion,
                gather::gather_lower_bound(n as u128, lam)
            );
            table.row(vec![
                "GATHER".into(),
                n.to_string(),
                lam.to_string(),
                fmt_time(g2.report.completion),
                "= (n−2)+λ (optimal, scatter reversed)".into(),
            ]);

            let matrix: Vec<Vec<u64>> = (0..n)
                .map(|i| (0..n).map(|j| (i * n + j) as u64).collect())
                .collect();
            let a2a = alltoall::run_alltoall(&matrix, lam);
            a2a.report.assert_model_clean();
            assert_eq!(
                a2a.report.completion,
                alltoall::alltoall_lower_bound(n as u128, lam)
            );
            table.row(vec![
                "ALLTOALL".into(),
                n.to_string(),
                lam.to_string(),
                fmt_time(a2a.report.completion),
                "= (n−2)+λ (optimal round-robin)".into(),
            ]);

            let ar = allreduce::run_allreduce(&values, lam);
            ar.report.assert_model_clean();
            assert_eq!(
                ar.report.completion,
                allreduce::allreduce_time(n as u128, lam)
            );
            table.row(vec![
                "ALLREDUCE".into(),
                n.to_string(),
                lam.to_string(),
                fmt_time(ar.report.completion),
                format!(
                    "= 2·f_λ(n) = {}",
                    fmt_time(allreduce::allreduce_time(n as u128, lam))
                ),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_table_populates_and_adaptive_competes() {
        let t = adaptive_table();
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn hierarchy_always_wins_on_this_grid() {
        let t = hierarchy_table();
        for row in t.rows() {
            // flat ≥ hierarchical on every configured row (strong
            // locality). Parse the leading rational of each cell.
            let parse = |s: &str| -> f64 {
                let tok = s.split_whitespace().next().unwrap();
                match tok.split_once('/') {
                    Some((a, b)) => a.parse::<f64>().unwrap() / b.parse::<f64>().unwrap(),
                    None => tok.parse().unwrap(),
                }
            };
            assert!(parse(&row[4]) >= parse(&row[5]), "row {row:?}");
        }
    }

    #[test]
    fn collectives_table_populates() {
        let t = collectives_table();
        assert_eq!(t.len(), 24);
    }
}
