//! Experiment X4: robustness of the Fibonacci schedule to latency
//! jitter.
//!
//! Section 2 of the paper argues λ "is expected to be fairly uniform ...
//! and not to fluctuate too much". This experiment quantifies the
//! schedule's sensitivity: run BCAST (planned for the base λ) while each
//! message's actual latency is `base + U{0..j}/q`, with queued input
//! ports absorbing any induced contention. Reported: completion vs the
//! jitter-free optimum, and how much of the slowdown is port contention
//! versus plain added latency.

use crate::table::{fmt_time, Table};
use postal_algos::bcast::bcast_programs;
use postal_model::{runtimes, Latency, Ratio, Time};
use postal_sim::{Jittered, PortMode, Simulation};

/// Runs jittered BCAST and returns (completion, queued receive count).
pub fn jittered_bcast(n: usize, base: Latency, max_extra_ticks: u32, seed: u64) -> (Time, usize) {
    let model = Jittered::new(base, max_extra_ticks, seed);
    let report = Simulation::new(n, &model)
        .port_mode(PortMode::Queued)
        .run(bcast_programs(n, base))
        .expect("broadcast cannot diverge");
    for i in 1..n {
        assert_eq!(
            report
                .trace
                .received_by(postal_sim::ProcId::from(i))
                .count(),
            1,
            "jitter must not break delivery"
        );
    }
    let queued = report
        .trace
        .transfers()
        .iter()
        .filter(|t| t.was_queued())
        .count();
    (report.completion, queued)
}

/// The jitter-robustness table.
pub fn jitter_table() -> Table {
    let mut table = Table::new(
        "X4: BCAST under latency jitter λ ∈ [base, base + ε] (queued ports, 5-seed max)",
        &[
            "n",
            "base λ",
            "max ε",
            "f_λ(n)",
            "worst completion",
            "slowdown",
            "queued recvs",
        ],
    );
    for (base, ticks) in [
        (Latency::from_int(2), [0u32, 1, 2, 4]),
        (Latency::from_ratio(5, 2), [0, 1, 2, 5]),
    ] {
        for n in [32usize, 128] {
            let ideal = runtimes::bcast_time(n as u128, base);
            for &j in &ticks {
                let (worst, queued) = (0..5u64)
                    .map(|seed| jittered_bcast(n, base, j, 1000 + seed))
                    .max_by_key(|&(t, _)| t)
                    .expect("nonempty seed set");
                // Sanity: completion at least the jitter-free optimum and
                // at most optimum + depth·ε (every hop can be ε late,
                // plus queuing is bounded by the same budget).
                assert!(worst >= ideal);
                let eps = Ratio::new(j as i128, base.ticks_per_unit());
                table.row(vec![
                    n.to_string(),
                    base.to_string(),
                    format!("{eps}"),
                    fmt_time(ideal),
                    fmt_time(worst),
                    format!("{:.3}×", worst.to_f64() / ideal.to_f64()),
                    queued.to_string(),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_jitter_is_exactly_optimal() {
        let (t, queued) = jittered_bcast(64, Latency::from_ratio(5, 2), 0, 7);
        assert_eq!(t, runtimes::bcast_time(64, Latency::from_ratio(5, 2)));
        assert_eq!(queued, 0);
    }

    #[test]
    fn jitter_degrades_gracefully() {
        let base = Latency::from_int(2);
        let ideal = runtimes::bcast_time(128, base).to_f64();
        let (t, _) = jittered_bcast(128, base, 2, 42);
        // ε = 1 unit of max jitter: slowdown bounded well under 2× the
        // ideal (the tree depth amplifies, but sub-linearly).
        assert!(t.to_f64() <= ideal * 2.0, "{t} vs ideal {ideal}");
    }

    #[test]
    fn table_populates() {
        assert_eq!(jitter_table().len(), 16);
    }
}
