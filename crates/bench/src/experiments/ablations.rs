//! Ablations for the design choices DESIGN.md calls out.

use crate::table::{fmt_time, Table};
use postal_algos::bcast::bcast_programs;
use postal_model::{runtimes, Latency};
use postal_sim::{PortMode, Simulation, Uniform};

/// Ablation: what happens if a schedule is *not* latency-aware? Run the
/// λ = 1 (binomial) BCAST tree under larger real latencies, in queued
/// port mode, and compare with the λ-aware Fibonacci tree.
///
/// This is the paper's core motivation quantified: the binomial tree's
/// dense recursion assumes answers come back immediately; under latency
/// λ its depth costs λ·⌈log₂ n⌉, versus Θ(λ log n / log(λ+1)) for BCAST.
pub fn latency_blind_tree() -> Table {
    let mut table = Table::new(
        "Ablation: λ-blind binomial tree vs λ-aware Fibonacci tree (queued ports)",
        &["n", "real λ", "binomial tree", "BCAST", "penalty"],
    );
    for lam in [
        Latency::from_int(2),
        Latency::from_int(4),
        Latency::from_int(8),
    ] {
        for n in [16usize, 64, 256] {
            let model = Uniform(lam);
            // Schedule computed for λ = 1, executed under the real λ.
            let blind = Simulation::new(n, &model)
                .port_mode(PortMode::Queued)
                .run(bcast_programs(n, Latency::TELEPHONE))
                .expect("broadcast cannot diverge");
            let aware = runtimes::bcast_time(n as u128, lam);
            assert!(blind.completion >= aware);
            table.row(vec![
                n.to_string(),
                lam.to_string(),
                fmt_time(blind.completion),
                fmt_time(aware),
                format!("{:.2}×", blind.completion.to_f64() / aware.to_f64()),
            ]);
        }
    }
    table
}

/// Ablation: strict vs queued port semantics for a conflicting workload.
/// The paper's algorithms are conflict-free (strict = queued); a naive
/// "everyone re-sends to the same hub" workload shows how queued mode
/// absorbs contention that strict mode flags.
pub fn port_modes() -> Table {
    use postal_sim::{Context, Idle, ProcId, Program};

    /// k senders all target p0 at time 0.
    struct Blast;
    impl Program<u8> for Blast {
        fn on_start(&mut self, ctx: &mut dyn Context<u8>) {
            ctx.send(ProcId::ROOT, 0);
        }
        fn on_receive(&mut self, _: &mut dyn Context<u8>, _: ProcId, _: u8) {}
    }

    let mut table = Table::new(
        "Ablation: input-port contention — strict (flagged) vs queued (delayed)",
        &[
            "senders",
            "λ",
            "strict completion",
            "violations",
            "queued completion",
        ],
    );
    for lam in [Latency::from_int(2), Latency::from_int(4)] {
        for k in [2usize, 4, 8] {
            let n = k + 1;
            let model = Uniform(lam);
            let build = || {
                let mut v: Vec<Box<dyn Program<u8>>> = vec![Box::new(Idle)];
                for _ in 0..k {
                    v.push(Box::new(Blast));
                }
                v
            };
            let strict = Simulation::new(n, &model).run(build()).unwrap();
            let queued = Simulation::new(n, &model)
                .port_mode(PortMode::Queued)
                .run(build())
                .unwrap();
            assert_eq!(strict.violations.len(), k - 1);
            assert!(queued.violations.is_empty());
            assert!(queued.completion >= strict.completion);
            table.row(vec![
                k.to_string(),
                lam.to_string(),
                fmt_time(strict.completion),
                strict.violations.len().to_string(),
                fmt_time(queued.completion),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_blind_penalty_grows_with_lambda() {
        let t = latency_blind_tree();
        assert_eq!(t.len(), 9);
        // Penalty at λ=8, n=256 must exceed penalty at λ=2, n=256.
        let penalty = |row: &Vec<String>| -> f64 { row[4].trim_end_matches('×').parse().unwrap() };
        let rows = t.rows();
        let p2 = rows
            .iter()
            .find(|r| r[0] == "256" && r[1] == "2")
            .map(penalty)
            .unwrap();
        let p8 = rows
            .iter()
            .find(|r| r[0] == "256" && r[1] == "8")
            .map(penalty)
            .unwrap();
        assert!(p8 > p2, "penalty must grow with λ: {p2} vs {p8}");
        assert!(p8 > 1.5, "λ-blindness must hurt at λ=8");
    }

    #[test]
    fn port_modes_table_populates() {
        assert_eq!(port_modes().len(), 6);
    }
}
