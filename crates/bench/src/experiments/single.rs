//! Experiments F1 (Figure 1), T6 (Theorem 6) and X2 (special cases).

use crate::table::{fmt_time, Table};
use postal_algos::{run_bcast, BroadcastTree};
use postal_model::{runtimes, GenFib, Latency};

/// The λ sweep used across single-message experiments.
pub fn lambda_sweep() -> Vec<Latency> {
    vec![
        Latency::TELEPHONE,
        Latency::from_ratio(3, 2),
        Latency::from_int(2),
        Latency::from_ratio(5, 2),
        Latency::from_int(4),
        Latency::from_int(10),
    ]
}

/// Experiment F1: regenerate Figure 1 — the generalized Fibonacci
/// broadcast tree for MPS(14, 5/2), height 7½.
pub fn figure1() -> (String, Table) {
    let latency = Latency::from_ratio(5, 2);
    let tree = BroadcastTree::build(14, latency);
    let art = format!(
        "Figure 1: generalized Fibonacci broadcast tree, n = 14, λ = 5/2\n\
         (height t = {} units, matching the paper's 7½)\n\n{}",
        tree.completion(),
        tree.render()
    );

    let mut table = Table::new(
        "F1: per-processor receive times, n = 14, λ = 5/2 (tree vs simulation)",
        &["proc", "tree t", "simulated t"],
    );
    let report = run_bcast(14, latency);
    let sim = report.trace.first_receipt_times(14);
    let mut tree_times = vec![None; 14];
    fn collect(node: &postal_algos::TreeNode, out: &mut Vec<Option<postal_model::Time>>) {
        out[node.proc.index()] = Some(node.ready);
        for c in &node.children {
            collect(c, out);
        }
    }
    collect(&tree.root, &mut tree_times);
    for i in 1..14 {
        table.row(vec![
            format!("p{i}"),
            fmt_time(tree_times[i].expect("tree covers all processors")),
            fmt_time(sim[i].expect("simulation delivers to all")),
        ]);
    }
    (art, table)
}

/// Experiment T6 with an explicit defect count: returns the table, the
/// number of (n, λ) cells where the simulated completion differed from
/// `f_λ(n)` — the "gap violations" CI asserts are zero via
/// `BENCH_theorem6.json` — and the total number of trace events the
/// sweep simulated (so callers can report an events/sec throughput).
pub fn theorem6_checked() -> (Table, u64, u64) {
    let mut table = Table::new(
        "T6: Algorithm BCAST vs Theorem 6 (simulated completion = f_λ(n))",
        &["n", "λ", "simulated", "f_λ(n)", "Thm7 lower", "Thm7 upper"],
    );
    let mut gap_violations = 0u64;
    let mut events = 0u64;
    for lam in lambda_sweep() {
        for n in [2usize, 5, 14, 32, 100, 512, 1000] {
            let report = run_bcast(n, lam);
            report.assert_model_clean();
            events += report.trace.len() as u64;
            let f = runtimes::bcast_time(n as u128, lam);
            gap_violations += u64::from(report.completion != f);
            table.row(vec![
                n.to_string(),
                lam.to_string(),
                fmt_time(report.completion),
                fmt_time(f),
                format!(
                    "{:.2}",
                    postal_model::bounds::index_lower_bound(n as u128, lam)
                ),
                format!(
                    "{:.2}",
                    postal_model::bounds::index_upper_bound(n as u128, lam)
                ),
            ]);
        }
    }
    (table, gap_violations, events)
}

/// Experiment T6: simulated BCAST time equals `f_λ(n)` for every (n, λ),
/// and is sandwiched by the Theorem 7(2) bounds.
///
/// # Panics
/// Panics if any cell violates the Theorem 6 equality.
pub fn theorem6() -> Table {
    let (table, gap_violations, _events) = theorem6_checked();
    assert_eq!(gap_violations, 0, "Theorem 6 equality must hold");
    table
}

/// Experiment X2: the λ = 1 and λ = 2 sanity anchors the paper cites —
/// powers of two / binomial broadcast and Fibonacci numbers.
pub fn special_cases() -> (Table, Table) {
    let mut pow2 = Table::new(
        "X2a: λ = 1 reduces to the telephone model (F_1(t) = 2^t, f_1(n) = ⌈log₂ n⌉)",
        &["t", "F_1(t)", "2^t"],
    );
    let g1 = GenFib::new(Latency::TELEPHONE);
    for t in 0..=10i128 {
        pow2.row(vec![
            t.to_string(),
            g1.value(postal_model::Time::from_int(t)).to_string(),
            (1u128 << t).to_string(),
        ]);
    }

    let mut fibo = Table::new(
        "X2b: λ = 2 yields the Fibonacci numbers (F_2(t) = Fib(t+1))",
        &["t", "F_2(t)", "Fib(t+1)"],
    );
    let g2 = GenFib::new(Latency::from_int(2));
    let mut fibs = vec![1u128, 1];
    for i in 2..=12 {
        fibs.push(fibs[i - 1] + fibs[i - 2]);
    }
    for t in 0..=11i128 {
        fibo.row(vec![
            t.to_string(),
            g2.value(postal_model::Time::from_int(t)).to_string(),
            fibs[t as usize].to_string(),
        ]);
    }
    (pow2, fibo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_art_is_complete() {
        let (art, table) = figure1();
        assert!(art.contains("15/2"));
        for i in 0..14 {
            assert!(art.contains(&format!("p{i} ")));
        }
        assert_eq!(table.len(), 13);
        // Tree and simulation agree on every row.
        for row in table.rows() {
            assert_eq!(row[1], row[2], "row {row:?}");
        }
    }

    #[test]
    fn theorem6_table_has_full_grid() {
        let table = theorem6();
        assert_eq!(table.len(), lambda_sweep().len() * 7);
        // The assert inside theorem6() already guarantees equality; spot
        // check a row's shape.
        assert!(table.rows()[0][2] == table.rows()[0][3]);
    }

    #[test]
    fn special_cases_match() {
        let (pow2, fibo) = special_cases();
        for row in pow2.rows() {
            assert_eq!(row[1], row[2]);
        }
        for row in fibo.rows() {
            assert_eq!(row[1], row[2]);
        }
    }
}
