//! Experiment X8: abstract interpretation vs concrete execution.
//!
//! Runs the `postal-abs` interval analysis over the paper grid and
//! reports, per workload, the analysis wall time against the DPOR model
//! checker's, the tightness of the completion bracket (interval width
//! relative to the concrete completion), and — the property CI asserts
//! on — the number of containment violations: grid points where the
//! abstract bracket fails to contain a concrete completion. A sound
//! analysis produces zero.

use postal_abs::{analyze_algo, cross_check_point, AbsConfig};
use postal_bench::report::BenchReport;
use postal_bench::table::Table;
use postal_mc::Algo;
use postal_model::{Interval, Latency, Ratio};
use std::time::Instant;

fn main() {
    println!("X8: abstract interpretation over the paper grid\n");
    let cfg = AbsConfig::default();
    let mut table = Table::new(
        "abstract vs concrete",
        &[
            "workload", "n", "m", "lambda", "bracket", "width", "abs us", "mc us", "verdict",
        ],
    );
    let mut violations = 0i128;
    let mut abs_total_us = 0i128;
    let mut mc_total_us = 0i128;
    let mut width_sum = 0.0f64;

    for algo in Algo::all() {
        for (n, lam) in [
            (8u32, Latency::from_int(1)),
            (8, Latency::from_ratio(5, 2)),
            (12, Latency::from_int(2)),
        ] {
            let m = if algo == Algo::Bcast { 1 } else { 2 };
            // cross_check_point times the model checker and the point
            // analysis together; time each side separately for the table.
            let t0 = Instant::now();
            let out = cross_check_point(algo, n, m, lam, &cfg);
            let both_us = t0.elapsed().as_micros() as i128;
            let t1 = Instant::now();
            let _ = analyze_algo(algo, n, m, Interval::point(lam.value()), None, &cfg);
            let abs_us = t1.elapsed().as_micros() as i128;
            let mc_us = (both_us - abs_us).max(0);
            abs_total_us += abs_us;
            mc_total_us += mc_us;
            let width = out.bracket.width().to_f64() / out.reference.to_f64().max(1e-9);
            width_sum += width;
            if !out.sound() {
                violations += 1;
            }
            table.row(vec![
                algo.name().to_string(),
                n.to_string(),
                m.to_string(),
                lam.to_string(),
                out.bracket.to_string(),
                format!("{width:.3}"),
                abs_us.to_string(),
                mc_us.to_string(),
                if out.sound() { "sound" } else { "UNSOUND" }.to_string(),
            ]);
        }
    }
    println!("{table}");

    // One symbolic sweep per algorithm over the paper's λ ∈ [1, 4]: the
    // workload abstract analysis covers for the price of a handful of
    // endpoint runs, where the concrete engines would need one run per
    // rational λ — an unbounded set.
    let range = Interval::new(Ratio::ONE, Ratio::from_int(4));
    let mut sweep = Table::new(
        "symbolic sweep over lambda in [1, 4] (n = 8, m = 2)",
        &["workload", "subintervals", "widened", "completion", "gap"],
    );
    let mut sweep_widened = 0i128;
    let t2 = Instant::now();
    for algo in Algo::all() {
        let m = if algo == Algo::Bcast { 1 } else { 2 };
        let rep = analyze_algo(algo, 8, m, range, None, &cfg);
        assert!(rep.is_clean(), "{algo} dirty over [1, 4]");
        let widened = rep.subintervals.iter().filter(|s| !s.exact).count();
        sweep_widened += widened as i128;
        sweep.row(vec![
            algo.name().to_string(),
            rep.subintervals.len().to_string(),
            widened.to_string(),
            rep.completion.to_string(),
            rep.gap.to_string(),
        ]);
    }
    let sweep_us = t2.elapsed().as_micros() as i128;
    println!("{sweep}");
    assert_eq!(
        violations, 0,
        "abstract bracket missed a concrete completion"
    );

    let mut report = BenchReport::new("abs");
    report
        .table(&table)
        .table(&sweep)
        .int("grid_points", table.len() as i128)
        .int("containment_violations", violations)
        .num("mean_bracket_width", width_sum / table.len() as f64)
        .int("abs_total_us", abs_total_us)
        .int("mc_total_us", mc_total_us)
        .num(
            "abs_vs_mc_time_ratio",
            abs_total_us as f64 / mc_total_us.max(1) as f64,
        )
        .int("sweep_algorithms", sweep.len() as i128)
        .int("sweep_widened_leaves", sweep_widened)
        .int("sweep_total_us", sweep_us)
        .text("config", "max_depth 6, lambda range [1, 4], n <= 12");
    postal_bench::report::emit_json(&report);
}
