//! Experiment SLN: inline streaming lint at simulator scale.
//!
//! Runs the paper's BCAST workload on the calendar-queue engine at
//! n ∈ {10³, 10⁴, 10⁵, 10⁶} (λ = 2) twice per rung: once bare
//! (trace discarded, no observer) and once with a [`LintSink`] riding
//! the recorder hook — the `postal-cli simulate --lint-inline` path,
//! where the full `P0001`–`P0007` report is produced **while the run
//! executes** and the trace is never materialized.
//!
//! Two budget gates make this a regression tripwire:
//!
//! * at n = 10⁶ the inline-linted run must finish under
//!   `$STREAM_LINT_OVERHEAD_X` (default 2.0) times the bare run;
//! * the linter's own reserved memory
//!   ([`postal_obs::LintStream::memory_bytes`])
//!   at n = 10⁶ must stay under `$STREAM_LINT_MEM_MIB` (default 64)
//!   MiB — O(n) state, not the O(sends) materialized trace.
//!
//! A counting global allocator additionally reports each run's peak
//! allocation delta, so the "no stored trace" claim is visible as a
//! number: the inline run's peak should sit near bare + linter bytes,
//! nowhere near the hundreds of MiB a million-send trace would cost.
//! At n ≤ 10⁴ the inline report is also pinned to the batch engine's
//! report over the recorded trace — the speed ladder doubles as a
//! correctness sweep.

use postal_algos::bcast_programs;
use postal_bench::report::BenchReport;
use postal_bench::table::Table;
use postal_model::{runtimes, Latency};
use postal_obs::LintSink;
use postal_sim::{Simulation, Uniform};
use postal_verify::{lint_schedule, render, LintOptions, Severity};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// System allocator wrapped with live/peak byte counters.
struct CountingAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

// SAFETY: delegates every operation to `System` unchanged; the wrapper
// only maintains counters on the side.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = self.live.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            self.peak.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.live.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc {
    live: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

/// Runs `f`, returning its result plus the peak allocation delta (bytes
/// above the live heap at entry) it caused.
fn with_peak_delta<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = ALLOC.live.load(Ordering::Relaxed);
    ALLOC.peak.store(baseline, Ordering::Relaxed);
    let out = f();
    let peak = ALLOC.peak.load(Ordering::Relaxed);
    (out, peak.saturating_sub(baseline))
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const MIB: f64 = 1024.0 * 1024.0;

fn main() {
    let lam = Latency::from_int(2);
    let overhead_budget = env_f64("STREAM_LINT_OVERHEAD_X", 2.0);
    let mem_budget_mib = env_f64("STREAM_LINT_MEM_MIB", 64.0);

    let mut table = Table::new(
        "SLN: inline streaming lint riding BCAST, λ = 2",
        &[
            "n",
            "bare s",
            "inline s",
            "overhead ×",
            "linter MiB",
            "peak Δ MiB",
        ],
    );
    let mut report = BenchReport::new("stream_lint");
    let mut gate_overhead = f64::NAN;
    let mut gate_linter_mib = f64::NAN;

    let uni = Uniform(lam);
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        // Bare rung: same engine, same discarded trace, no linter.
        let bare_sim = Simulation::new(n, &uni).discard_trace();
        let bare_start = Instant::now();
        let (bare, bare_peak) = with_peak_delta(|| {
            bare_sim
                .run(bcast_programs(n, lam))
                .expect("bcast simulates")
        });
        let bare_secs = bare_start.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(
            bare.completion,
            runtimes::bcast_time(n as u128, lam),
            "bare engine missed the closed form at n = {n}"
        );

        // Inline rung: the lint sink consumes the event stream as the
        // engine emits it; nothing is stored.
        let sink = LintSink::new(n as u32, lam, LintOptions::default());
        let inline_sim = Simulation::new(n, &uni).observe(&sink).discard_trace();
        let inline_start = Instant::now();
        let (inline, inline_peak) = with_peak_delta(|| {
            inline_sim
                .run(bcast_programs(n, lam))
                .expect("bcast simulates under the lint sink")
        });
        let inline_secs = inline_start.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(inline.completion, bare.completion);

        let stream = sink.finish();
        assert!(!stream.out_of_order(), "engine feed must be in order");
        let linter_bytes = stream.memory_bytes();
        let diags = stream.finish();
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        assert!(
            errors == 0,
            "BCAST must inline-lint error-free at n = {n}:\n{}",
            render::render_report(&diags, "exp_stream_lint")
        );

        // Correctness anchor: on the small rungs, record the trace and
        // pin the inline report to the batch engine byte for byte.
        if n <= 10_000 {
            let full = Simulation::new(n, &uni)
                .run(bcast_programs(n, lam))
                .expect("bcast simulates");
            let schedule = full.trace.to_schedule(n as u32, lam);
            assert_eq!(
                diags,
                lint_schedule(&schedule, &LintOptions::default()),
                "inline report diverged from batch at n = {n}"
            );
        }

        let overhead = inline_secs / bare_secs;
        let linter_mib = linter_bytes as f64 / MIB;
        let peak_delta_mib = (inline_peak as f64 - bare_peak as f64) / MIB;
        println!(
            "n = {n:>9}: bare {bare_secs:.3}s, inline {inline_secs:.3}s \
             ({overhead:.2}×), linter {linter_mib:.1} MiB, \
             peak Δ {peak_delta_mib:+.1} MiB, {} diagnostics",
            diags.len()
        );
        table.row(vec![
            n.to_string(),
            format!("{bare_secs:.3}"),
            format!("{inline_secs:.3}"),
            format!("{overhead:.2}"),
            format!("{linter_mib:.1}"),
            format!("{peak_delta_mib:+.1}"),
        ]);
        report
            .num(&format!("bare_secs_n{n}"), bare_secs)
            .num(&format!("inline_secs_n{n}"), inline_secs)
            .num(&format!("overhead_x_n{n}"), overhead)
            .num(&format!("linter_mib_n{n}"), linter_mib);
        if n == 1_000_000 {
            gate_overhead = overhead;
            gate_linter_mib = linter_mib;
        }
    }

    println!("{table}");
    report
        .num("overhead_x_n1000000", gate_overhead)
        .num("overhead_budget_x", overhead_budget)
        .num("linter_mib_n1000000", gate_linter_mib)
        .num("mem_budget_mib", mem_budget_mib)
        .table(&table);
    postal_bench::report::emit_json(&report);

    let mut failed = false;
    if gate_overhead > overhead_budget {
        eprintln!(
            "error: inline lint at n = 10^6 cost {gate_overhead:.2}× the bare run \
             (budget {overhead_budget}×)"
        );
        failed = true;
    }
    if gate_linter_mib > mem_budget_mib {
        eprintln!(
            "error: linter reserved {gate_linter_mib:.1} MiB at n = 10^6 \
             (budget {mem_budget_mib} MiB)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
