//! Experiment X4: BCAST robustness to latency jitter.

fn main() {
    println!("{}", postal_bench::experiments::jitter_exp::jitter_table());
}
