//! Experiment X4: BCAST robustness to latency jitter.

use postal_bench::report::BenchReport;

fn main() {
    let table = postal_bench::experiments::jitter_exp::jitter_table();
    println!("{table}");
    let mut report = BenchReport::new("jitter");
    report.table(&table);
    postal_bench::report::emit_json(&report);
}
