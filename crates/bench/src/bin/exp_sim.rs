//! Experiment SIM: calendar-queue engine throughput at scale.
//!
//! Runs the paper's BCAST workload on the fast engine
//! ([`Simulation::run`]: fixed-point `FastTime`, O(1) bucket queue)
//! across n ∈ {10³, 10⁴, 10⁵, 10⁶}, reporting wall-clock and events/sec
//! to `BENCH_sim.json`. Every run's completion time is checked against
//! the paper's closed form `f_λ(n)` by exact rational equality — the
//! speed ladder doubles as a correctness sweep.
//!
//! Two gates make this a regression tripwire:
//!
//! * BCAST at n = 10⁶ (two million engine events) must finish under
//!   `$SIM_BUDGET_SECS` (default 60) — the headline "million processors
//!   in seconds" property of the calendar-queue rewrite;
//! * at an off-lattice λ (7/3, which never hits the half-unit lattice,
//!   so every event rides the exact-`Ratio` fallback) the fast engine
//!   must agree with the seed reference engine
//!   ([`Simulation::run_reference`]) on completion, event count,
//!   message count, and per-processor statistics. The full
//!   trace-identity pin lives in `tests/engine_differential.rs`; this
//!   gate keeps the release-mode fallback path honest in CI.
//!
//! The reference engine is also timed at n ≤ 10⁵ for a speedup column;
//! at 10⁶ only the fast engine runs (the point of the rewrite).

use postal_algos::bcast_programs;
use postal_bench::report::BenchReport;
use postal_bench::table::Table;
use postal_model::{runtimes, Latency};
use postal_sim::{Simulation, Uniform};
use std::time::Instant;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let budget_secs = env_f64("SIM_BUDGET_SECS", 60.0);
    let lam = Latency::from_int(2);

    let mut table = Table::new(
        "SIM: BCAST on the calendar-queue engine, λ = 2",
        &["n", "fast secs", "fast ev/s", "ref secs", "speedup ×"],
    );
    let mut report = BenchReport::new("sim");
    let mut fast_secs_at_million = f64::NAN;

    let uni = Uniform(lam);
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let sim = Simulation::new(n, &uni);

        let start = Instant::now();
        let fast = sim.run(bcast_programs(n, lam)).expect("bcast simulates");
        let fast_secs = start.elapsed().as_secs_f64().max(1e-9);
        fast.assert_model_clean();
        assert_eq!(
            fast.completion,
            runtimes::bcast_time(n as u128, lam),
            "fast engine missed the closed form at n = {n}"
        );
        assert_eq!(fast.messages(), n - 1);
        let rate = fast.events as f64 / fast_secs;

        // The reference engine is the seed implementation; timing it at
        // 10⁶ would roughly double this job's wall-clock for a number
        // the differential tests already pin, so the ladder stops it at
        // 10⁵.
        let (ref_cell, speedup_cell) = if n <= 100_000 {
            let start = Instant::now();
            let reference = sim
                .run_reference(bcast_programs(n, lam))
                .expect("bcast simulates on the reference engine");
            let ref_secs = start.elapsed().as_secs_f64().max(1e-9);
            assert_eq!(reference.completion, fast.completion);
            assert_eq!(reference.events, fast.events);
            report.num(&format!("ref_secs_n{n}"), ref_secs);
            report.num(&format!("speedup_x_n{n}"), ref_secs / fast_secs);
            (
                format!("{ref_secs:.3}"),
                format!("{:.2}", ref_secs / fast_secs),
            )
        } else {
            fast_secs_at_million = fast_secs;
            ("-".to_string(), "-".to_string())
        };

        println!(
            "n = {n:>9}: fast {fast_secs:>8.3} s  ({rate:>12.0} ev/s)  ref {ref_cell:>8}  \
             completion {} = f_λ(n)",
            fast.completion
        );
        table.row(vec![
            n.to_string(),
            format!("{fast_secs:.3}"),
            format!("{rate:.0}"),
            ref_cell,
            speedup_cell,
        ]);
        report.num(&format!("fast_secs_n{n}"), fast_secs);
        report.num(&format!("events_per_sec_fast_n{n}"), rate);
        report.int(&format!("events_n{n}"), fast.events as i128);
    }

    assert!(
        fast_secs_at_million < budget_secs,
        "BCAST at n = 10⁶ took {fast_secs_at_million:.1} s, over the {budget_secs:.0} s budget"
    );

    // Fallback-parity gate: λ = 7/3 is off the half-unit lattice, so
    // the fast engine's calendar never fires and every event takes the
    // exact-`Ratio` fallback — which must behave exactly like the
    // reference engine.
    let lam_off = Latency::from_ratio(7, 3);
    let n_off = 20_000usize;
    let uni_off = Uniform(lam_off);
    let sim = Simulation::new(n_off, &uni_off);
    let start = Instant::now();
    let fast = sim
        .run(bcast_programs(n_off, lam_off))
        .expect("off-lattice bcast simulates");
    let fast_off_secs = start.elapsed().as_secs_f64().max(1e-9);
    let start = Instant::now();
    let reference = sim
        .run_reference(bcast_programs(n_off, lam_off))
        .expect("off-lattice bcast simulates on the reference engine");
    let ref_off_secs = start.elapsed().as_secs_f64().max(1e-9);

    let mut mismatches = 0u32;
    mismatches += u32::from(fast.completion != reference.completion);
    mismatches += u32::from(fast.events != reference.events);
    mismatches += u32::from(fast.messages() != reference.messages());
    mismatches += u32::from(fast.proc_stats != reference.proc_stats);
    assert_eq!(
        mismatches, 0,
        "off-lattice fallback diverged from the reference engine at λ = 7/3"
    );
    assert_eq!(
        fast.completion,
        runtimes::bcast_time(n_off as u128, lam_off)
    );
    println!(
        "fallback parity: BCAST({n_off}, 7/3) fast {fast_off_secs:.3} s vs ref {ref_off_secs:.3} s, \
         completion {} on both engines",
        fast.completion
    );

    println!("{table}");
    report.num("sim_budget_secs", budget_secs);
    report.num("fallback_fast_secs", fast_off_secs);
    report.num("fallback_ref_secs", ref_off_secs);
    report.int("fallback_parity_mismatches", mismatches as i128);
    report.table(&table);
    postal_bench::report::emit_json(&report);
}
