//! Experiment L8: the multi-message lower bound and overhead factors.

use postal_bench::report::BenchReport;

fn main() {
    let table = postal_bench::experiments::multi_exp::lower_bound_factors();
    println!("{table}");
    let mut report = BenchReport::new("lower_bounds");
    report.table(&table);
    postal_bench::report::emit_json(&report);
}
