//! Experiment L8: the multi-message lower bound and overhead factors.

fn main() {
    println!(
        "{}",
        postal_bench::experiments::multi_exp::lower_bound_factors()
    );
}
