//! Experiment X5: exact optimum vs Lemma 8 on tiny instances.

use postal_bench::report::BenchReport;

fn main() {
    let table = postal_bench::experiments::gap_exp::gap_table(30_000_000);
    println!("{table}");
    let mut report = BenchReport::new("gap");
    report.table(&table);
    postal_bench::report::emit_json(&report);
}
