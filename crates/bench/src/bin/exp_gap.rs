//! Experiment X5: exact optimum vs Lemma 8 on tiny instances.

fn main() {
    println!(
        "{}",
        postal_bench::experiments::gap_exp::gap_table(30_000_000)
    );
}
