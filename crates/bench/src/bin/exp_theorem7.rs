//! Experiment T7: bounds on F_λ and f_λ (Theorem 7 + appendix).

use postal_bench::report::BenchReport;

fn main() {
    let fib = postal_bench::experiments::bounds_exp::fib_bounds();
    let index = postal_bench::experiments::bounds_exp::index_bounds();
    let asym = postal_bench::experiments::bounds_exp::asymptotic_bounds();
    println!("{fib}");
    println!("{index}");
    println!("{asym}");
    let mut report = BenchReport::new("theorem7");
    report.table(&fib).table(&index).table(&asym);
    postal_bench::report::emit_json(&report);
}
