//! Experiment T7: bounds on F_λ and f_λ (Theorem 7 + appendix).

fn main() {
    let e = &postal_bench::experiments::bounds_exp::fib_bounds();
    println!("{e}");
    println!("{}", postal_bench::experiments::bounds_exp::index_bounds());
    println!(
        "{}",
        postal_bench::experiments::bounds_exp::asymptotic_bounds()
    );
}
