//! Experiment L18: the DTREE(d) family.

use postal_model::Latency;

fn main() {
    println!("{}", postal_bench::experiments::dtree_exp::bound_check());
    for lam in [Latency::from_ratio(5, 2), Latency::from_int(8)] {
        println!(
            "{}",
            postal_bench::experiments::dtree_exp::degree_sweep(32, 8, lam)
        );
    }
    println!(
        "{}",
        postal_bench::experiments::dtree_exp::constant_factor_table()
    );
}
