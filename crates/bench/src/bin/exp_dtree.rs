//! Experiment L18: the DTREE(d) family.

use postal_bench::report::BenchReport;
use postal_model::Latency;

fn main() {
    let bound = postal_bench::experiments::dtree_exp::bound_check();
    println!("{bound}");
    let mut report = BenchReport::new("dtree");
    report.table(&bound);
    for lam in [Latency::from_ratio(5, 2), Latency::from_int(8)] {
        let sweep = postal_bench::experiments::dtree_exp::degree_sweep(32, 8, lam);
        println!("{sweep}");
        report.table(&sweep);
    }
    let constants = postal_bench::experiments::dtree_exp::constant_factor_table();
    println!("{constants}");
    report.table(&constants);
    postal_bench::report::emit_json(&report);
}
