//! Experiments L10/L12/L14/L16: multi-message closed forms.

fn main() {
    println!("{}", postal_bench::experiments::multi_exp::closed_forms());
    println!(
        "{}",
        postal_bench::experiments::multi_exp::repeat_pacing_ablation()
    );
}
