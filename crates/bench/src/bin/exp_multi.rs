//! Experiments L10/L12/L14/L16: multi-message closed forms.

use postal_bench::report::BenchReport;

fn main() {
    let closed = postal_bench::experiments::multi_exp::closed_forms();
    let pacing = postal_bench::experiments::multi_exp::repeat_pacing_ablation();
    println!("{closed}");
    println!("{pacing}");
    let mut report = BenchReport::new("multi");
    report.table(&closed).table(&pacing);
    postal_bench::report::emit_json(&report);
}
