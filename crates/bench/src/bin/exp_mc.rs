//! Experiment X7: model-checking cost and DPOR reduction.
//!
//! Runs the `postal-mc` checker over the paper grid and reports, per
//! workload, the number of executions DPOR actually explored against
//! the naive interleaving estimate (the product of schedulable-set
//! sizes along the canonical run). The paper's algorithms are
//! conflict-free, so every row must collapse to a single execution —
//! the table quantifies how much enumeration that forcedness saves.

use postal_bench::report::BenchReport;
use postal_bench::table::Table;
use postal_mc::{check_algo, Algo, McConfig};
use postal_model::Latency;

fn main() {
    println!("X7: DPOR model checking over the paper grid\n");
    let cfg = McConfig::default();
    let mut table = Table::new(
        "model-checking reduction",
        &[
            "workload",
            "n",
            "m",
            "lambda",
            "explored",
            "naive",
            "reduction",
            "verdict",
        ],
    );
    let mut total_explored = 0i128;
    let mut total_naive = 0.0f64;
    let mut dirty = 0i128;

    for algo in Algo::all() {
        for (n, lam) in [
            (8u32, Latency::from_int(1)),
            (8, Latency::from_ratio(5, 2)),
            (12, Latency::from_int(2)),
        ] {
            let m = if algo == Algo::Bcast { 1 } else { 2 };
            let rep = check_algo(algo, n, m, lam, None, &cfg);
            total_explored += rep.stats.executions as i128;
            total_naive += rep.stats.naive_interleavings;
            if !rep.is_clean() {
                dirty += 1;
            }
            table.row(vec![
                algo.name().to_string(),
                n.to_string(),
                m.to_string(),
                lam.to_string(),
                rep.stats.executions.to_string(),
                format!("{:.0}", rep.stats.naive_interleavings),
                format!("{:.2e}", rep.stats.reduction_ratio()),
                if rep.is_clean() { "clean" } else { "DIRTY" }.to_string(),
            ]);
        }
    }
    println!("{table}");
    assert_eq!(dirty, 0, "a paper algorithm failed its model check");

    let mut report = BenchReport::new("mc");
    report
        .table(&table)
        .int("grid_points", table.len() as i128)
        .int("states_explored", total_explored)
        .num("naive_interleavings", total_naive)
        .num(
            "reduction_ratio",
            total_explored as f64 / total_naive.max(1.0),
        )
        .int("dirty", dirty)
        .text("config", "exhaustive (no preemption bound), n <= 12");
    postal_bench::report::emit_json(&report);
}
