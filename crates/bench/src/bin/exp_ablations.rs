//! Ablations: λ-blind trees and port-contention semantics.

fn main() {
    println!(
        "{}",
        postal_bench::experiments::ablations::latency_blind_tree()
    );
    println!("{}", postal_bench::experiments::ablations::port_modes());
}
