//! Ablations: λ-blind trees and port-contention semantics.

use postal_bench::report::BenchReport;

fn main() {
    let blind = postal_bench::experiments::ablations::latency_blind_tree();
    let ports = postal_bench::experiments::ablations::port_modes();
    println!("{blind}");
    println!("{ports}");
    let mut report = BenchReport::new("ablations");
    report.table(&blind).table(&ports);
    postal_bench::report::emit_json(&report);
}
