//! Experiment LNT: million-send lint throughput.
//!
//! Generates broadcast-tree schedules at n ∈ {10³, 10⁴, 10⁵, 10⁶}
//! (λ = 5/2, the paper's running example), serializes each to the
//! `postal lint` JSON format, and times the full CLI-equivalent path —
//! streaming parse → every `P0001`–`P0007` pass → rendered summary —
//! reporting a sends/sec series to `BENCH_lint.json`.
//!
//! Two budget gates make this a regression tripwire, not just a report:
//!
//! * the n = 10⁶ end-to-end lint must finish under
//!   `$LINT_BUDGET_SECS` (default 10) seconds;
//! * the epoch race detector at 10⁵ flights must allocate under
//!   `$RACE_BUDGET_MIB` (default 64) MiB at peak — O(E + n), not the
//!   old O(E·n) vector-clock footprint.
//!
//! Peak footprint is measured by a counting global allocator (the
//! entire workspace's libraries are `#![forbid(unsafe_code)]`; this
//! binary hosts the one `unsafe impl` the measurement needs).

use postal_algos::{BroadcastTree, ToSchedule};
use postal_bench::report::BenchReport;
use postal_bench::table::Table;
use postal_model::Latency;
use postal_verify::{json, lint_schedule, render, Flight, LintOptions, Severity};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// System allocator wrapped with live/peak byte counters.
struct CountingAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

// SAFETY: delegates every operation to `System` unchanged; the wrapper
// only maintains counters on the side.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = self.live.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            self.peak.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.live.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc {
    live: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

/// Runs `f`, returning its result plus the peak allocation delta (bytes
/// above the live heap at entry) it caused.
fn with_peak_delta<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = ALLOC.live.load(Ordering::Relaxed);
    ALLOC.peak.store(baseline, Ordering::Relaxed);
    let out = f();
    let peak = ALLOC.peak.load(Ordering::Relaxed);
    (out, peak.saturating_sub(baseline))
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let lam = Latency::from_ratio(5, 2);
    let lint_budget_secs = env_f64("LINT_BUDGET_SECS", 10.0);
    let race_budget_mib = env_f64("RACE_BUDGET_MIB", 64.0);

    let mut table = Table::new(
        "LNT: single-sweep lint throughput, BCAST tree schedules, λ = 5/2",
        &["n", "sends", "parse s", "lint s", "total s", "sends/sec"],
    );
    let mut report = BenchReport::new("lint");
    let mut worst_total = 0.0f64;

    for n in [1_000u64, 10_000, 100_000, 1_000_000] {
        let schedule = BroadcastTree::build(n, lam).to_schedule();
        let sends = schedule.len();
        let text = json::schedule_to_json(&schedule, Some(1));
        drop(schedule);

        // The CLI-equivalent path: streaming parse from a reader, the
        // full pass sweep, then the rendered verdict line.
        let parse_start = Instant::now();
        let parsed = json::parse_schedule_reader(std::io::Cursor::new(text.as_bytes()))
            .expect("generated schedule parses");
        let parse_secs = parse_start.elapsed().as_secs_f64();

        let lint_start = Instant::now();
        let diags = lint_schedule(&parsed.schedule, &LintOptions::default());
        let lint_secs = lint_start.elapsed().as_secs_f64();
        // The tree can warn (P0006 idle ports off the Fibonacci lattice)
        // but must never error — same bar as `postal lint`'s exit code.
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        assert!(
            errors == 0,
            "broadcast tree must lint error-free at n = {n}:\n{}",
            render::render_report(&diags, "exp_lint")
        );
        let summary = format!(
            "{} warnings, completes at t = {}",
            diags.len(),
            parsed.schedule.completion()
        );

        let total = parse_secs + lint_secs;
        worst_total = worst_total.max(total);
        let rate = sends as f64 / total;
        println!(
            "n = {n:>9}: {sends:>9} sends, parse {parse_secs:.3}s + lint {lint_secs:.3}s \
             = {total:.3}s  ({rate:.0} sends/sec)  [{summary:.60}]"
        );
        table.row(vec![
            n.to_string(),
            sends.to_string(),
            format!("{parse_secs:.3}"),
            format!("{lint_secs:.3}"),
            format!("{total:.3}"),
            format!("{rate:.0}"),
        ]);
        report.num(&format!("sends_per_sec_n{n}"), rate);
        if n == 1_000_000 {
            report
                .num("e2e_secs_n1000000", total)
                .num("lint_budget_secs", lint_budget_secs);
        }
    }

    // Race-detector footprint gate: 10⁵ flights through the epoch
    // detector must stay O(E + n), far under the old O(E·n) clocks.
    let n_race = 100_000u32;
    let flights: Vec<Flight> = BroadcastTree::build(n_race as u64, lam)
        .to_schedule()
        .sends()
        .iter()
        .enumerate()
        .map(|(i, s)| Flight {
            src: s.src,
            dst: s.dst,
            send_at: s.send_start.to_f64(),
            recv_at: (s.send_start + lam.as_time()).to_f64(),
            label: format!("s{i}"),
        })
        .collect();
    let (races, race_peak) = with_peak_delta(|| postal_verify::detect_races(n_race, &flights));
    let race_mib = race_peak as f64 / (1024.0 * 1024.0);
    println!(
        "race detector: {} flights, {} races, peak allocation {race_mib:.1} MiB \
         (budget {race_budget_mib} MiB)",
        flights.len(),
        races.len()
    );
    assert!(races.is_empty(), "broadcast tree flights must be race-free");

    println!("{table}");
    report
        .int("race_flights", flights.len() as i128)
        .num("race_peak_mib", race_mib)
        .num("race_budget_mib", race_budget_mib)
        .table(&table);
    postal_bench::report::emit_json(&report);

    let mut failed = false;
    if worst_total > lint_budget_secs {
        eprintln!(
            "error: n = 10^6 end-to-end lint took {worst_total:.3}s \
             (budget {lint_budget_secs}s)"
        );
        failed = true;
    }
    if race_mib > race_budget_mib {
        eprintln!(
            "error: race detector peaked at {race_mib:.1} MiB (budget {race_budget_mib} MiB)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
