//! Experiment F1: regenerate Figure 1 of the paper.

fn main() {
    let (art, table) = postal_bench::experiments::single::figure1();
    println!("{art}");
    println!("{table}");
}
