//! Experiment F1: regenerate Figure 1 of the paper.

use postal_bench::report::BenchReport;

fn main() {
    let (art, table) = postal_bench::experiments::single::figure1();
    println!("{art}");
    println!("{table}");
    let mismatches = table.rows().iter().filter(|r| r[1] != r[2]).count();
    let mut report = BenchReport::new("fig1");
    report
        .int("processors", 14)
        .int("tree_sim_mismatches", mismatches as i128)
        .table(&table);
    postal_bench::report::emit_json(&report);
}
