//! Experiment OBS: recorder overhead at scale.
//!
//! Synthesizes event streams at n ∈ {10³, 10⁴, 10⁵, 10⁶} and pushes the
//! identical stream through each recorder — [`NullRecorder`] (the
//! zero-cost floor), [`MemoryRecorder`] (every event, unbounded
//! memory), and the sharded [`RingRecorder`] (fixed memory, honest drop
//! accounting) — reporting an events/sec series to `BENCH_obs.json`.
//! Event construction happens inside every timed loop, so the Null
//! column is a real baseline (build + dispatch), not an empty loop.
//!
//! Two gates make this a regression tripwire:
//!
//! * at 10⁶ events the ring recorder must stay under
//!   `$OBS_RING_OVERHEAD_BUDGET` (default 2.0) × the NullRecorder's
//!   time — once the head fills, a record is one atomic sequence, and
//!   that property is what makes tracing affordable at n → 10⁶;
//! * the streaming percentile sketches must agree with the exact
//!   event-vector quantiles to within one log-bucket on a real BCAST
//!   workload (n = 64, λ = 5/2) — speed must not cost correctness.

use postal_algos::bcast_programs;
use postal_bench::report::BenchReport;
use postal_bench::table::Table;
use postal_model::{Latency, Time};
use postal_obs::hist::exact_quantile;
use postal_obs::{
    MemoryRecorder, MetricsSummary, NullRecorder, ObsEvent, Recorder, RingRecorder, RunMeta,
};
use postal_sim::{log_from_report, Simulation, Uniform};
use std::hint::black_box;
use std::time::Instant;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `i`-th synthetic event: send spans sweeping across 64 source
/// processors, so the ring's shards all see traffic.
fn event(i: u64) -> ObsEvent {
    let t = Time::from_int((i / 64) as i128);
    ObsEvent::Send {
        seq: i,
        src: (i % 64) as u32,
        dst: ((i + 1) % 64) as u32,
        start: t,
        finish: t + Time::ONE,
    }
}

/// Times pushing `n` synthesized events through `rec`, returning
/// (seconds, events/sec).
fn drive(rec: &dyn Recorder, n: u64) -> (f64, f64) {
    let start = Instant::now();
    for i in 0..n {
        rec.record(black_box(event(i)));
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (secs, n as f64 / secs)
}

fn main() {
    let overhead_budget = env_f64("OBS_RING_OVERHEAD_BUDGET", 2.0);

    let mut table = Table::new(
        "OBS: recorder throughput, synthetic send streams across 64 procs",
        &["n", "null ev/s", "memory ev/s", "ring ev/s", "ring/null ×"],
    );
    let mut report = BenchReport::new("obs");
    let mut worst_overhead = 0.0f64;

    for n in [1_000u64, 10_000, 100_000, 1_000_000] {
        let (null_secs, null_rate) = drive(&NullRecorder, n);

        let memory = MemoryRecorder::new();
        let (_, mem_rate) = drive(&memory, n);
        drop(memory);

        // Default config: head mode, 16 shards × 65536 capacity. Below
        // ~1M events everything is kept; at 10⁶ the head fills and the
        // remainder takes the atomic-only drop path.
        let ring = RingRecorder::new(65_536 / 16);
        let (ring_secs, ring_rate) = drive(&ring, n);
        assert_eq!(
            ring.recorded_events() + ring.dropped_events(),
            n,
            "ring lost events at n = {n}"
        );
        let overhead = ring_secs / null_secs;
        worst_overhead = if n == 1_000_000 {
            worst_overhead.max(overhead)
        } else {
            worst_overhead
        };

        println!(
            "n = {n:>9}: null {null_rate:>12.0} ev/s   memory {mem_rate:>12.0} ev/s   \
             ring {ring_rate:>12.0} ev/s   ({overhead:.2}× null, {} dropped)",
            ring.dropped_events()
        );
        table.row(vec![
            n.to_string(),
            format!("{null_rate:.0}"),
            format!("{mem_rate:.0}"),
            format!("{ring_rate:.0}"),
            format!("{overhead:.2}"),
        ]);
        report.num(&format!("events_per_sec_null_n{n}"), null_rate);
        report.num(&format!("events_per_sec_memory_n{n}"), mem_rate);
        report.num(&format!("events_per_sec_ring_n{n}"), ring_rate);
        report.num(&format!("ring_overhead_x_n{n}"), overhead);
    }

    // Percentile-fidelity gate: streaming sketch vs exact quantiles on
    // a real workload from the paper's grid.
    let (n, lam) = (64usize, Latency::from_ratio(5, 2));
    let sim = Simulation::new(n, &Uniform(lam))
        .run(bcast_programs(n, lam))
        .expect("bcast simulates");
    let log = log_from_report(&sim, "event", n as u32, Some(lam), Some(1));
    let s = MetricsSummary::from_log(&log);
    let mut send_starts = std::collections::HashMap::new();
    for e in log.events() {
        if let ObsEvent::Send { seq, start, .. } = *e {
            send_starts.insert(seq, start);
        }
    }
    let latencies: Vec<f64> = log
        .events()
        .iter()
        .filter_map(|e| match *e {
            ObsEvent::Recv { seq, finish, .. } => {
                send_starts.get(&seq).map(|st| (finish - *st).to_f64())
            }
            _ => None,
        })
        .collect();
    for q in [0.5, 0.99] {
        let exact = exact_quantile(&latencies, q);
        let (lo, hi) = s.latency_sketch.quantile_bounds(q);
        assert!(
            exact >= lo && exact < hi,
            "sketch p{} bucket [{lo}, {hi}) misses exact {exact}",
            q * 100.0
        );
        report.num(
            &format!("latency_p{}_sketch", (q * 100.0) as u32),
            s.latency_quantile(q),
        );
        report.num(&format!("latency_p{}_exact", (q * 100.0) as u32), exact);
    }
    println!(
        "percentile fidelity: BCAST({n}, {lam}) p50 sketch {:.4} vs exact {:.4}, \
         p99 sketch {:.4} vs exact {:.4} — within one log-bucket",
        s.latency_quantile(0.5),
        exact_quantile(&latencies, 0.5),
        s.latency_quantile(0.99),
        exact_quantile(&latencies, 0.99),
    );

    // A sampled drain end to end, so the report pins the drop metadata
    // contract the exporters rely on.
    let ring = RingRecorder::new(16);
    for i in 0..1_000u64 {
        ring.record(event(i));
    }
    let dropped = ring.dropped_events();
    let drained = ring.into_log(RunMeta::new("bench", 64));
    assert_eq!(drained.meta().dropped_events, Some(dropped));
    report.int("drain_dropped_events", dropped as i128);

    println!("{table}");
    report
        .num("ring_overhead_x_worst_n1000000", worst_overhead)
        .num("ring_overhead_budget_x", overhead_budget)
        .table(&table);
    postal_bench::report::emit_json(&report);

    if worst_overhead > overhead_budget {
        eprintln!(
            "error: ring recorder overhead {worst_overhead:.2}× null at 10⁶ events \
             (budget {overhead_budget}×)"
        );
        std::process::exit(1);
    }
}
