//! Experiment X2: λ = 1 (binomial) and λ = 2 (Fibonacci) sanity anchors.

use postal_bench::report::BenchReport;

fn main() {
    let (pow2, fibo) = postal_bench::experiments::single::special_cases();
    println!("{pow2}");
    println!("{fibo}");
    let pow2_mismatches = pow2.rows().iter().filter(|r| r[1] != r[2]).count();
    let fibo_mismatches = fibo.rows().iter().filter(|r| r[1] != r[2]).count();
    let mut report = BenchReport::new("special_cases");
    report
        .int("pow2_mismatches", pow2_mismatches as i128)
        .int("fibonacci_mismatches", fibo_mismatches as i128)
        .table(&pow2)
        .table(&fibo);
    postal_bench::report::emit_json(&report);
}
