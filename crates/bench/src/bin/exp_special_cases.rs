//! Experiment X2: λ = 1 (binomial) and λ = 2 (Fibonacci) sanity anchors.

fn main() {
    let (pow2, fibo) = postal_bench::experiments::single::special_cases();
    println!("{pow2}");
    println!("{fibo}");
}
