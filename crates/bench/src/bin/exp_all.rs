//! Runs every experiment and prints the full report (the source of
//! EXPERIMENTS.md's measured columns).
//!
//! Pass a directory as the first argument to also dump each table as
//! CSV: `cargo run --release -p postal-bench --bin exp_all -- out/`.
//! Always writes `BENCH_all.json` summarizing every table emitted.

use postal_bench::experiments as exp;
use postal_bench::report::BenchReport;
use postal_bench::table::Table;

struct CsvSink {
    dir: Option<std::path::PathBuf>,
    count: u32,
    report: BenchReport,
}

impl CsvSink {
    fn emit(&mut self, table: &Table) {
        println!("{table}");
        self.report.table(table);
        if let Some(dir) = &self.dir {
            self.count += 1;
            let slug: String = table
                .title()
                .chars()
                .take_while(|&c| c != ':')
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            let path = dir.join(format!("{:02}_{}.csv", self.count, slug));
            std::fs::write(&path, table.to_csv()).expect("writable CSV directory");
        }
    }
}

fn main() {
    let dir = std::env::args().nth(1).map(std::path::PathBuf::from);
    if let Some(d) = &dir {
        std::fs::create_dir_all(d).expect("can create CSV output directory");
    }
    let mut sink = CsvSink {
        dir,
        count: 0,
        report: BenchReport::new("all"),
    };
    println!("=== F1: Figure 1 ===");
    let (art, table) = exp::single::figure1();
    println!("{art}");
    sink.emit(&table);

    println!("=== T6: Theorem 6 ===");
    let sweep_start = std::time::Instant::now();
    let (t6, gap_violations, events) = exp::single::theorem6_checked();
    let sweep_secs = sweep_start.elapsed().as_secs_f64();
    sink.emit(&t6);
    sink.report
        .int("theorem6_gap_violations", gap_violations as i128)
        .int("theorem6_events", events as i128)
        .num("theorem6_events_per_sec", events as f64 / sweep_secs);

    println!("=== T7: Theorem 7 ===");
    sink.emit(&exp::bounds_exp::fib_bounds());
    sink.emit(&exp::bounds_exp::index_bounds());
    sink.emit(&exp::bounds_exp::asymptotic_bounds());

    println!("=== L8: lower bounds ===");
    sink.emit(&exp::multi_exp::lower_bound_factors());

    println!("=== L10/L12/L14/L16: closed forms ===");
    sink.emit(&exp::multi_exp::closed_forms());
    sink.emit(&exp::multi_exp::repeat_pacing_ablation());

    println!("=== L18: DTREE ===");
    sink.emit(&exp::dtree_exp::bound_check());
    sink.emit(&exp::dtree_exp::degree_sweep(
        32,
        8,
        postal_model::Latency::from_ratio(5, 2),
    ));
    sink.emit(&exp::dtree_exp::constant_factor_table());

    println!("=== X1: crossovers ===");
    for n in [16u128, 64, 256] {
        sink.emit(&exp::crossover::winner_map(n));
    }

    println!("=== X2: special cases ===");
    let (pow2, fibo) = exp::single::special_cases();
    sink.emit(&pow2);
    sink.emit(&fibo);

    println!("=== X3: extensions ===");
    sink.emit(&exp::extensions_exp::adaptive_table());
    sink.emit(&exp::extensions_exp::hierarchy_table());
    sink.emit(&exp::extensions_exp::collectives_table());

    println!("=== X5: optimality gap (exact search) ===");
    sink.emit(&exp::gap_exp::gap_table(10_000_000));

    println!("=== X4: jitter robustness ===");
    sink.emit(&exp::jitter_exp::jitter_table());

    println!("=== Ablations ===");
    sink.emit(&exp::ablations::latency_blind_tree());
    sink.emit(&exp::ablations::port_modes());

    if gap_violations > 0 {
        eprintln!("error: {gap_violations} Theorem-6 gap violations");
        std::process::exit(1);
    }
    postal_bench::report::emit_json(&sink.report);
}
