//! Experiment X6: wall-clock fidelity of the threaded runtime.
//!
//! Runs BCAST and PIPELINE on real OS threads (1 model unit = 3 ms) and
//! compares measured completion against the exact model prediction. The
//! lower bound is hard (sleeps enforce model minimums); the overhead
//! column is scheduler jitter plus the queued-input-port approximation.

use postal_algos::bcast::{BcastPayload, BcastProgram};
use postal_algos::pipeline::PipelineProgram;
use postal_algos::MultiPacket;
use postal_bench::report::BenchReport;
use postal_model::{runtimes, Latency};
use postal_runtime::{run_threaded, send_programs_from, RuntimeConfig};
use postal_sim::{ProcId, Program};
use std::time::Duration;

fn main() {
    let config = RuntimeConfig {
        unit: Duration::from_millis(3),
    };
    println!(
        "X6: threaded runtime vs model (1 unit = {:?})\n",
        config.unit
    );
    println!(
        "{:<26} {:>12} {:>12} {:>9}",
        "workload", "model", "measured", "overhead"
    );
    let mut report = BenchReport::new("threaded");
    let mut workloads = 0i128;
    let mut max_overhead = 0.0f64;

    for (n, lam) in [
        (8usize, Latency::from_int(2)),
        (14, Latency::from_ratio(5, 2)),
        (32, Latency::from_int(4)),
    ] {
        let model = runtimes::bcast_time(n as u128, lam).to_f64();
        let programs = send_programs_from(n, |id| {
            Box::new(BcastProgram::new(
                lam,
                (id == ProcId::ROOT).then_some(n as u64),
            )) as Box<dyn Program<BcastPayload> + Send>
        });
        let run = run_threaded(lam, config, programs);
        assert!(run.elapsed_units >= model - 0.05, "impossibly fast");
        let overhead = (run.elapsed_units / model - 1.0) * 100.0;
        println!(
            "{:<26} {:>12.2} {:>12.2} {:>8.1}%",
            format!("BCAST n={n} λ={lam}"),
            model,
            run.elapsed_units,
            overhead
        );
        report.num(&format!("overhead_pct_bcast_n{n}"), overhead);
        workloads += 1;
        max_overhead = max_overhead.max(overhead);
    }

    for (n, m, lam) in [
        (8usize, 4u32, Latency::from_int(2)),
        (14, 6, Latency::from_ratio(5, 2)),
    ] {
        let model = runtimes::pipeline_time(n as u128, m as u64, lam).to_f64();
        let programs = send_programs_from(n, |id| {
            Box::new(PipelineProgram::new(
                lam,
                m,
                (id == ProcId::ROOT).then_some(n as u64),
            )) as Box<dyn Program<MultiPacket> + Send>
        });
        let run = run_threaded(lam, config, programs);
        assert!(run.elapsed_units >= model - 0.05, "impossibly fast");
        let overhead = (run.elapsed_units / model - 1.0) * 100.0;
        println!(
            "{:<26} {:>12.2} {:>12.2} {:>8.1}%",
            format!("PIPELINE n={n} m={m} λ={lam}"),
            model,
            run.elapsed_units,
            overhead
        );
        report.num(&format!("overhead_pct_pipeline_n{n}_m{m}"), overhead);
        workloads += 1;
        max_overhead = max_overhead.max(overhead);
    }

    report
        .int("workloads", workloads)
        .num("max_overhead_pct", max_overhead);
    postal_bench::report::emit_json(&report);
}
