//! Experiment T6: BCAST optimality (Theorem 6).

fn main() {
    println!("{}", postal_bench::experiments::single::theorem6());
}
