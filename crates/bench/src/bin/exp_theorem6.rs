//! Experiment T6: BCAST optimality (Theorem 6).
//!
//! Besides the text table, writes `BENCH_theorem6.json` (gap-violation
//! count CI asserts is zero) and the observability artifacts for the
//! paper's flagship instance BCAST(14, 5/2): a Chrome trace and a
//! Prometheus exposition, both in the standard bench output directory
//! (`$BENCH_OUT_DIR`, default: the workspace root).

use postal_bench::report::BenchReport;
use postal_model::Latency;
use postal_sim::log_from_report;

fn main() {
    let sweep_start = std::time::Instant::now();
    let (table, gap_violations, events) = postal_bench::experiments::single::theorem6_checked();
    let sweep_secs = sweep_start.elapsed().as_secs_f64();
    println!("{table}");

    // Observability artifacts for the Figure-1 instance.
    let lam = Latency::from_ratio(5, 2);
    let run = postal_algos::run_bcast(14, lam);
    let log = log_from_report(&run, "event", 14, Some(lam), Some(1));
    let dir = postal_bench::report::out_dir();
    std::fs::write(
        dir.join("TRACE_theorem6.json"),
        postal_obs::to_chrome_trace(&log),
    )
    .expect("writable output directory");
    std::fs::write(
        dir.join("METRICS_theorem6.prom"),
        postal_obs::to_prometheus(&log),
    )
    .expect("writable output directory");

    let mut report = BenchReport::new("theorem6");
    report
        .int("cases", table.len() as i128)
        .int("gap_violations", gap_violations as i128)
        .int("events", events as i128)
        .num("events_per_sec", events as f64 / sweep_secs)
        .text("flagship_completion", &run.completion.to_string())
        .table(&table);
    postal_bench::report::emit_json(&report);
    if gap_violations > 0 {
        std::process::exit(1);
    }
}
