//! Experiment TOPO: lint throughput with the topology oracle enabled.
//!
//! The topology-aware lint path (`lint_schedule_with_topology`) wraps
//! the standard pass sweep with three graph-grounded passes
//! (`P0017`–`P0019`). This experiment prices that wrapper at
//! 10³–10⁶ sends, two ways:
//!
//! * **complete oracle** — the no-op identity path every `--topology
//!   complete` run takes: same broadcast-tree schedules as `exp_lint`,
//!   byte-identical output asserted, so the measured delta is pure
//!   plumbing overhead;
//! * **sparse oracle** — a Knödel-graph (`mbg:N`) BFS-tree schedule
//!   linted against its own graph: every send pays a real `is_edge`
//!   test and the BFS bound actually computes.
//!
//! Gate: over the whole series, each oracle-enabled sweep must stay
//! under `$TOPO_OVERHEAD_MAX` (default 1.5) times the plain-lint wall
//! clock for the *same* schedules. Results land in `BENCH_topo.json`
//! via `report::emit_json`.

use postal_algos::{BroadcastTree, ToSchedule};
use postal_bench::report::BenchReport;
use postal_bench::table::Table;
use postal_model::schedule::{Schedule, TimedSend};
use postal_model::{Latency, Time, Topology, TopologySpec};
use postal_verify::{lint_schedule, lint_schedule_with_topology, render, LintOptions, Severity};
use std::time::Instant;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The greedy BFS-tree broadcast schedule for `topo` from p0: BFS order
/// fixes parents, each informed processor sends to its BFS children
/// back-to-back one unit apart. Edge-respecting by construction.
fn bfs_tree_schedule(topo: &Topology, lam: Latency) -> Schedule {
    let n = topo.n();
    let mut parent = vec![u32::MAX; n as usize];
    let mut order = vec![0u32];
    let mut seen = vec![false; n as usize];
    seen[0] = true;
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for v in topo.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                parent[v as usize] = u;
                order.push(v);
            }
        }
    }
    let mut informed = vec![Time::ZERO; n as usize];
    let mut next_free = vec![Time::ZERO; n as usize];
    let mut sends = Vec::with_capacity(n as usize - 1);
    for &v in order.iter().skip(1) {
        let u = parent[v as usize];
        let start = informed[u as usize].max(next_free[u as usize]);
        next_free[u as usize] = start + Time::ONE;
        informed[v as usize] = start + lam.as_time();
        sends.push(TimedSend {
            src: u,
            dst: v,
            send_start: start,
        });
    }
    Schedule::new(n, lam, sends)
}

/// Times one full lint sweep, returning (diagnostics, seconds).
fn timed<F: FnOnce() -> Vec<postal_model::lint::Diagnostic>>(
    f: F,
) -> (Vec<postal_model::lint::Diagnostic>, f64) {
    let start = Instant::now();
    let diags = f();
    (diags, start.elapsed().as_secs_f64())
}

fn main() {
    let lam = Latency::from_ratio(5, 2);
    let overhead_max = env_f64("TOPO_OVERHEAD_MAX", 1.5);
    let opts = LintOptions::default();

    let mut table = Table::new(
        "TOPO: lint throughput with the topology oracle, λ = 5/2",
        &[
            "n",
            "sends",
            "plain s",
            "complete s",
            "mbg plain s",
            "mbg s",
            "sends/sec (mbg)",
        ],
    );
    let mut report = BenchReport::new("topo");
    let mut plain_total = 0.0f64;
    let mut complete_total = 0.0f64;
    let mut sparse_plain_total = 0.0f64;
    let mut sparse_total = 0.0f64;

    for n in [1_000u64, 10_000, 100_000, 1_000_000] {
        // Complete oracle: the identity path over exp_lint's schedules.
        let tree = BroadcastTree::build(n, lam).to_schedule();
        let sends = tree.len();
        let complete = Topology::complete(n as u32);
        let (plain, plain_secs) = timed(|| lint_schedule(&tree, &opts));
        let (with_complete, complete_secs) =
            timed(|| lint_schedule_with_topology(&tree, &opts, &complete));
        assert_eq!(
            with_complete, plain,
            "complete oracle must be byte-identical at n = {n}"
        );
        drop(tree);

        // Sparse oracle: a Knödel BFS tree against its own graph.
        let mbg = TopologySpec::Mbg { n: n as u32 }
            .instantiate(n as u32)
            .expect("even n");
        let sparse_schedule = bfs_tree_schedule(&mbg, lam);
        let (sparse_plain, sparse_plain_secs) = timed(|| lint_schedule(&sparse_schedule, &opts));
        let (sparse, sparse_secs) =
            timed(|| lint_schedule_with_topology(&sparse_schedule, &opts, &mbg));
        let errors = sparse
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        assert!(
            errors == 0,
            "mbg BFS tree must lint error-free at n = {n}:\n{}",
            render::render_report(&sparse, "exp_topo")
        );
        drop((sparse_plain, sparse_schedule));

        plain_total += plain_secs;
        complete_total += complete_secs;
        sparse_plain_total += sparse_plain_secs;
        sparse_total += sparse_secs;

        let rate = sends as f64 / sparse_secs.max(1e-9);
        println!(
            "n = {n:>9}: {sends:>9} sends, plain {plain_secs:.3}s, complete-oracle \
             {complete_secs:.3}s, mbg plain {sparse_plain_secs:.3}s, mbg-oracle \
             {sparse_secs:.3}s  ({rate:.0} sends/sec)"
        );
        table.row(vec![
            n.to_string(),
            sends.to_string(),
            format!("{plain_secs:.3}"),
            format!("{complete_secs:.3}"),
            format!("{sparse_plain_secs:.3}"),
            format!("{sparse_secs:.3}"),
            format!("{rate:.0}"),
        ]);
        report
            .num(&format!("plain_secs_n{n}"), plain_secs)
            .num(&format!("complete_secs_n{n}"), complete_secs)
            .num(&format!("mbg_secs_n{n}"), sparse_secs);
    }

    // Series-level gate (the per-n numbers at 10³ are all noise): each
    // oracle-enabled sweep vs the plain sweep over the same schedules.
    let complete_ratio = complete_total / plain_total.max(1e-9);
    let sparse_ratio = sparse_total / sparse_plain_total.max(1e-9);
    println!(
        "overhead: complete oracle {complete_ratio:.3}x, mbg oracle {sparse_ratio:.3}x \
         (budget {overhead_max}x)"
    );
    println!("{table}");
    report
        .num("complete_overhead_ratio", complete_ratio)
        .num("mbg_overhead_ratio", sparse_ratio)
        .num("overhead_budget", overhead_max)
        .table(&table);
    postal_bench::report::emit_json(&report);

    let mut failed = false;
    if complete_ratio > overhead_max {
        eprintln!(
            "error: complete-oracle lint is {complete_ratio:.3}x plain \
             (budget {overhead_max}x)"
        );
        failed = true;
    }
    if sparse_ratio > overhead_max {
        eprintln!("error: mbg-oracle lint is {sparse_ratio:.3}x plain (budget {overhead_max}x)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
