//! Experiment X3: Section 5 extensions.

use postal_bench::report::BenchReport;

fn main() {
    let adaptive = postal_bench::experiments::extensions_exp::adaptive_table();
    let hierarchy = postal_bench::experiments::extensions_exp::hierarchy_table();
    let collectives = postal_bench::experiments::extensions_exp::collectives_table();
    println!("{adaptive}");
    println!("{hierarchy}");
    println!("{collectives}");
    let mut report = BenchReport::new("extensions");
    report
        .table(&adaptive)
        .table(&hierarchy)
        .table(&collectives);
    postal_bench::report::emit_json(&report);
}
