//! Experiment X3: Section 5 extensions.

fn main() {
    println!(
        "{}",
        postal_bench::experiments::extensions_exp::adaptive_table()
    );
    println!(
        "{}",
        postal_bench::experiments::extensions_exp::hierarchy_table()
    );
    println!(
        "{}",
        postal_bench::experiments::extensions_exp::collectives_table()
    );
}
