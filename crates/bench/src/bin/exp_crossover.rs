//! Experiment X1: winner maps over (m, λ).

use postal_bench::report::BenchReport;

fn main() {
    let mut report = BenchReport::new("crossover");
    for n in [16u128, 64, 256] {
        let map = postal_bench::experiments::crossover::winner_map(n);
        println!("{map}");
        report.table(&map);
    }
    for lam_i in [4i128, 8, 16] {
        let lam = postal_model::Latency::from_int(lam_i);
        let key = format!("pack_pipeline_crossover_m_n64_lambda{lam_i}");
        match postal_bench::experiments::crossover::pack_pipeline_crossover(64, lam) {
            Some(m) => {
                println!("PACK→PIPELINE crossover at n=64, λ={lam}: m = {m}");
                report.int(&key, m as i128);
            }
            None => {
                println!("No PACK→PIPELINE crossover found at n=64, λ={lam} for m ≤ 512");
                report.int(&key, 0);
            }
        }
    }
    postal_bench::report::emit_json(&report);
}
