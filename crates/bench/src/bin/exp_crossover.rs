//! Experiment X1: winner maps over (m, λ).

fn main() {
    for n in [16u128, 64, 256] {
        println!("{}", postal_bench::experiments::crossover::winner_map(n));
    }
    for lam_i in [4i128, 8, 16] {
        let lam = postal_model::Latency::from_int(lam_i);
        match postal_bench::experiments::crossover::pack_pipeline_crossover(64, lam) {
            Some(m) => println!("PACK→PIPELINE crossover at n=64, λ={lam}: m = {m}"),
            None => println!("No PACK→PIPELINE crossover found at n=64, λ={lam} for m ≤ 512"),
        }
    }
}
