//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * memoized tick-lattice `F_λ` vs naive recursion (`ablate_fib`);
//! * exact rational arithmetic vs `f64` (`ablate_clock`) — the price
//!   paid for the paper's equalities being checkable exactly;
//! * cascade computation cost (`ablate_cascade`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use postal_algos::{cascade, Orientation};
use postal_model::{ratio::ratio, GenFib, Latency, Ratio};
use std::hint::black_box;

/// Naive exponential-time recursion straight off the paper's definition,
/// on the same tick lattice (p, q) as `GenFib`.
fn naive_fib(k: i128, p: i128, q: i128) -> u128 {
    if k < p {
        1
    } else {
        naive_fib(k - q, p, q).saturating_add(naive_fib(k - p, p, q))
    }
}

fn bench_fib_memo_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_fib");
    // λ = 5/2 → p = 5, q = 2; keep t small enough for the naive version.
    for t_ticks in [20i128, 30, 40] {
        group.bench_with_input(BenchmarkId::new("naive", t_ticks), &t_ticks, |b, &k| {
            b.iter(|| black_box(naive_fib(black_box(k), 5, 2)));
        });
        group.bench_with_input(BenchmarkId::new("memoized", t_ticks), &t_ticks, |b, &k| {
            b.iter(|| {
                let fib = GenFib::new(Latency::from_ratio(5, 2));
                black_box(fib.value_at_ticks(black_box(k)))
            });
        });
    }
    group.finish();
}

fn bench_clock_arithmetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_clock");
    // A representative schedule computation: accumulate 10^4 alternating
    // +1 and +λ steps, as an engine run does.
    group.bench_function("rational", |b| {
        let lam = ratio(5, 2);
        b.iter(|| {
            let mut t = Ratio::ZERO;
            for i in 0..10_000 {
                t += if i % 2 == 0 { Ratio::ONE } else { lam };
            }
            black_box(t)
        });
    });
    group.bench_function("f64", |b| {
        b.iter(|| {
            let mut t = 0.0f64;
            for i in 0..10_000 {
                t += if i % 2 == 0 { 1.0 } else { 2.5 };
            }
            black_box(t)
        });
    });
    group.finish();
}

fn bench_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_cascade");
    let fib = GenFib::new(Latency::from_ratio(5, 2));
    for n in [14u64, 1024, 1 << 20] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(cascade(&fib, black_box(n), Orientation::Standard)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fib_memo_vs_naive,
    bench_clock_arithmetic,
    bench_cascade
);
criterion_main!(benches);
