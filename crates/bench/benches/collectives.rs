//! Benchmarks for the Section-5 collectives and the schedule machinery:
//! flood generation, combine, gossip, all-reduce, and schedule
//! validation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use postal_algos::ext::{allreduce, combine, gossip};
use postal_algos::{flood_schedule, BroadcastTree, ToSchedule};
use postal_model::Latency;
use std::hint::black_box;

const LAM: fn() -> Latency = || Latency::from_ratio(5, 2);

fn bench_flood(c: &mut Criterion) {
    let mut group = c.benchmark_group("flood_schedule");
    for n in [64u64, 1024, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(flood_schedule(black_box(n), LAM())));
        });
    }
    group.finish();
}

fn bench_schedule_validation(c: &mut Criterion) {
    use postal_verify::{lint_schedule, LintOptions};
    let mut group = c.benchmark_group("schedule_lint");
    for n in [64u64, 1024, 16384] {
        let schedule = BroadcastTree::build(n, LAM()).to_schedule();
        group.bench_with_input(BenchmarkId::from_parameter(n), &schedule, |b, s| {
            b.iter(|| black_box(lint_schedule(s, &LintOptions::default())));
        });
    }
    group.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine");
    for n in [64usize, 512] {
        let values: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, v| {
            b.iter(|| black_box(combine::run_combine(v, LAM()).root_total));
        });
    }
    group.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    for n in [64usize, 512] {
        let values: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, v| {
            b.iter(|| black_box(allreduce::run_allreduce(v, LAM()).report.completion));
        });
    }
    group.finish();
}

fn bench_gossip(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip");
    for n in [16usize, 64] {
        let values: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, v| {
            b.iter(|| black_box(gossip::run_gossip(v, LAM()).report.completion));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_flood,
    bench_schedule_validation,
    bench_combine,
    bench_allreduce,
    bench_gossip
);
criterion_main!(benches);
