//! Benchmarks for the multi-message algorithms (Experiments L10–L18):
//! one benchmark per algorithm per lemma, simulating the full
//! event-driven execution at representative (n, m, λ) points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use postal_algos::{run_dtree, run_pack, run_pipeline, run_repeat};
use postal_model::Latency;
use std::hint::black_box;

const N: usize = 64;
const LAM: fn() -> Latency = || Latency::from_ratio(5, 2);

fn bench_repeat(c: &mut Criterion) {
    let mut group = c.benchmark_group("repeat_lemma10");
    for m in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| black_box(run_repeat(N, m, LAM()).completion()));
        });
    }
    group.finish();
}

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack_lemma12");
    for m in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| black_box(run_pack(N, m, LAM()).completion()));
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_lemma14_16");
    // m = 2 exercises PIPELINE-1 (m ≤ λ), m = 16 PIPELINE-2.
    for m in [2u32, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| black_box(run_pipeline(N, m, LAM()).completion()));
        });
    }
    group.finish();
}

fn bench_dtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtree_lemma18");
    for d in [1u64, 2, 4, 63] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| black_box(run_dtree(N, 8, LAM(), d).completion()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_repeat,
    bench_pack,
    bench_pipeline,
    bench_dtree
);
criterion_main!(benches);
