//! Benchmarks for single-message broadcast (Experiment T6 / Figure 1):
//! the cost of computing `f_λ(n)`, building the Fibonacci broadcast tree,
//! and running the full event-driven BCAST simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use postal_algos::{run_bcast, BroadcastTree};
use postal_model::{GenFib, Latency};
use std::hint::black_box;

fn bench_gen_fib_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen_fib_index");
    for lam in [
        Latency::TELEPHONE,
        Latency::from_ratio(5, 2),
        Latency::from_int(10),
    ] {
        for n in [1u128 << 10, 1 << 20, 1 << 40] {
            group.bench_with_input(BenchmarkId::new(format!("lambda_{lam}"), n), &n, |b, &n| {
                b.iter(|| {
                    // Fresh evaluator per iteration: measures the
                    // memo-table build, the dominant cost in practice.
                    let fib = GenFib::new(lam);
                    black_box(fib.index(black_box(n)))
                });
            });
        }
    }
    group.finish();
}

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("fib_tree_build");
    let lam = Latency::from_ratio(5, 2);
    for n in [14u64, 256, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(BroadcastTree::build(black_box(n), lam)));
        });
    }
    group.finish();
}

fn bench_bcast_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcast_simulation");
    for lam in [Latency::TELEPHONE, Latency::from_ratio(5, 2)] {
        for n in [14usize, 128, 1024] {
            group.bench_with_input(BenchmarkId::new(format!("lambda_{lam}"), n), &n, |b, &n| {
                b.iter(|| black_box(run_bcast(black_box(n), lam).completion));
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gen_fib_index,
    bench_tree_build,
    bench_bcast_simulation
);
criterion_main!(benches);
