//! Normalized message flights.
//!
//! The race detector works over *flights*: one record per message with
//! approximate send and receive instants. Both exact event-driven
//! traces ([`postal_sim::Trace`]) and wall-clock runtime reports reduce
//! to this shape, so one detector serves every substrate.

use postal_model::latency::Latency;
use postal_model::schedule::Schedule;
use postal_sim::{Trace, Transfer};

/// One message in flight: who sent it, who received it, and when.
///
/// Times are `f64` model units. Exact traces convert losslessly for
/// the magnitudes involved; wall-clock traces are approximate by
/// nature, which is exactly why their ordering needs the causal check.
#[derive(Debug, Clone, PartialEq)]
pub struct Flight {
    /// Sending processor index.
    pub src: u32,
    /// Receiving processor index.
    pub dst: u32,
    /// When the sender's output port started transmitting.
    pub send_at: f64,
    /// When the receiver finished receiving.
    pub recv_at: f64,
    /// Display label (e.g. a sequence number or payload tag).
    pub label: String,
}

/// Converts an event-engine trace into flights.
pub fn flights_from_trace<P>(trace: &Trace<P>) -> Vec<Flight> {
    trace
        .transfers()
        .iter()
        .map(|t: &Transfer<P>| Flight {
            src: t.src.0,
            dst: t.dst.0,
            send_at: t.send_start.to_f64(),
            recv_at: t.recv_finish.to_f64(),
            label: format!("#{}", t.seq.0),
        })
        .collect()
}

/// Converts a trace back into a static [`Schedule`] so the lint engine
/// can analyze what the engine actually did. `n` and `latency` are the
/// run's parameters (a trace does not carry them).
pub fn schedule_from_trace<P>(trace: &Trace<P>, n: u32, latency: Latency) -> Schedule {
    trace.to_schedule(n, latency)
}

/// Builds flights from wall-clock delivery records `(src, dst,
/// recv_at_units)`, reconstructing the send instant as
/// `recv_at − λ` (the postal model's fixed flight time). Use this for
/// `postal-runtime` reports, whose deliveries carry only completion
/// times.
pub fn flights_from_deliveries<I>(deliveries: I, latency: Latency) -> Vec<Flight>
where
    I: IntoIterator<Item = (u32, u32, f64)>,
{
    let lam = latency.to_f64();
    deliveries
        .into_iter()
        .enumerate()
        .map(|(i, (src, dst, recv_at))| Flight {
            src,
            dst,
            send_at: recv_at - lam,
            recv_at,
            label: format!("#{i}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deliveries_reconstruct_send_times() {
        let lam = Latency::from_ratio(5, 2);
        let flights = flights_from_deliveries([(0u32, 1u32, 2.5f64), (0, 2, 3.5)], lam);
        assert_eq!(flights.len(), 2);
        assert!((flights[0].send_at - 0.0).abs() < 1e-12);
        assert!((flights[1].send_at - 1.0).abs() < 1e-12);
        assert_eq!(flights[1].label, "#1");
    }
}
