//! rustc-style text rendering for diagnostics.
//!
//! ```text
//! error[P0001]: p0 starts sends at t = 0 and t = 1/2 (1/2 < 1 unit apart)
//!   --> bad.json: p0
//!    = send: p0 -> p1 at t = 0
//!    = send: p0 -> p2 at t = 1/2
//!    = rule: a processor "can send a new message to a new processor every
//!      unit of time" ...
//! ```

use postal_model::lint::{Diagnostic, Severity};

/// Renders one diagnostic in rustc style. `source` names the schedule
/// being linted (a file path, or e.g. `"<trace>"`).
pub fn render_diagnostic(d: &Diagnostic, source: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
    match d.proc {
        Some(p) => out.push_str(&format!("  --> {source}: p{p}\n")),
        None => out.push_str(&format!("  --> {source}\n")),
    }
    for s in &d.sends {
        out.push_str(&format!(
            "   = send: p{} -> p{} at t = {}\n",
            s.src, s.dst, s.send_start
        ));
    }
    if let Some(t) = d.related_time {
        out.push_str(&format!("   = at: t = {t}\n"));
    }
    if let Some(w) = d.witness {
        out.push_str(&format!("   = witness: lambda in {w}\n"));
    }
    out.push_str(&format!("   = rule: {}\n", wrap(d.rule(), 72, "     ")));
    out
}

/// Renders a full report: every diagnostic plus a summary line.
/// Returns the empty string when there is nothing to say.
pub fn render_report(diags: &[Diagnostic], source: &str) -> String {
    if diags.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&render_diagnostic(d, source));
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warn)
        .count();
    let infos = diags
        .iter()
        .filter(|d| d.severity == Severity::Info)
        .count();
    let mut parts = Vec::new();
    if errors > 0 {
        parts.push(format!("{errors} error{}", plural(errors)));
    }
    if warnings > 0 {
        parts.push(format!("{warnings} warning{}", plural(warnings)));
    }
    if infos > 0 {
        parts.push(format!("{infos} note{}", plural(infos)));
    }
    out.push_str(&format!("{source}: {}\n", parts.join(", ")));
    out
}

fn plural(k: usize) -> &'static str {
    if k == 1 {
        ""
    } else {
        "s"
    }
}

/// Greedy word wrap with a hanging indent for continuation lines.
fn wrap(text: &str, width: usize, indent: &str) -> String {
    let mut out = String::new();
    let mut line_len = 0usize;
    for word in text.split_whitespace() {
        if line_len == 0 {
            out.push_str(word);
            line_len = word.len();
        } else if line_len + 1 + word.len() > width {
            out.push('\n');
            out.push_str(indent);
            out.push_str(word);
            line_len = word.len();
        } else {
            out.push(' ');
            out.push_str(word);
            line_len += 1 + word.len();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::latency::Latency;
    use postal_model::lint::{lint_schedule, LintOptions};
    use postal_model::schedule::{Schedule, TimedSend};
    use postal_model::time::Time;

    #[test]
    fn renders_code_location_sends_and_rule() {
        let s = Schedule::new(
            3,
            Latency::from_ratio(5, 2),
            vec![
                TimedSend {
                    src: 0,
                    dst: 1,
                    send_start: Time::ZERO,
                },
                TimedSend {
                    src: 0,
                    dst: 2,
                    send_start: Time::new(1, 2),
                },
            ],
        );
        let diags = lint_schedule(&s, &LintOptions::ports_only());
        let text = render_report(&diags, "bad.json");
        assert!(text.contains("error[P0001]"), "{text}");
        assert!(text.contains("--> bad.json: p0"), "{text}");
        assert!(text.contains("= send: p0 -> p2 at t = 1/2"), "{text}");
        assert!(text.contains("= rule:"), "{text}");
        assert!(text.contains("bad.json: 1 error"), "{text}");
    }

    #[test]
    fn empty_report_renders_nothing() {
        assert_eq!(render_report(&[], "x"), "");
    }
}
