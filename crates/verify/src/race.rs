//! Happens-before race detection over message flights.
//!
//! The detector replays a trace's flights, builds the send→receive
//! partial order with vector clocks, and flags pairs of deliveries to
//! the same destination whose observed order is **not causally
//! forced** — i.e. the later message's send does not happen-after the
//! earlier message's receipt, and the two do not share a sender (the
//! postal model's fixed latency makes each `src → dst` channel FIFO).
//! Such a pair could arrive in either order under latency jitter, so a
//! program whose meaning depends on the observed order is racy.
//!
//! Broadcast schedules deliver each message once per processor and are
//! race-free; the lint exists for multi-message and collective traffic
//! (`m`-message broadcast, gather, all-to-all), where it distinguishes
//! pipelines whose ordering is enforced by the channel from those that
//! merely *happened* to arrive in a convenient order.

use crate::flight::Flight;

/// A pair of deliveries whose order is not causally forced.
#[derive(Debug, Clone, PartialEq)]
pub struct Race {
    /// The destination processor observing the ambiguous order.
    pub dst: u32,
    /// The earlier delivery (by observed receive time).
    pub first: Flight,
    /// The later delivery.
    pub second: Flight,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Vector clock: one logical counter per processor.
type Clock = Vec<u64>;

fn leq(a: &Clock, b: &Clock) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Detects delivery races in `flights` over `n` processors.
///
/// Returns one [`Race`] per *adjacent* unforced pair at each
/// destination (forcedness is transitive along a destination's delivery
/// sequence, so adjacent pairs characterize the whole order).
pub fn detect_races(n: u32, flights: &[Flight]) -> Vec<Race> {
    let n = n as usize;
    // Event list: receives sort before sends at equal instants so that
    // a processor forwarding the moment it finishes receiving (legal in
    // the postal model) picks up the causal dependency.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Kind {
        Recv,
        Send,
    }
    let mut events: Vec<(f64, Kind, usize)> = Vec::with_capacity(flights.len() * 2);
    for (i, f) in flights.iter().enumerate() {
        events.push((f.send_at, Kind::Send, i));
        events.push((f.recv_at, Kind::Recv, i));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut clock: Vec<Clock> = vec![vec![0; n]; n];
    let mut send_vc: Vec<Clock> = vec![Vec::new(); flights.len()];
    let mut recv_vc: Vec<Clock> = vec![Vec::new(); flights.len()];
    for (_, kind, i) in events {
        let f = &flights[i];
        match kind {
            Kind::Send => {
                let p = f.src as usize;
                clock[p][p] += 1;
                send_vc[i] = clock[p].clone();
            }
            Kind::Recv => {
                let d = f.dst as usize;
                // A flight whose send never happened (malformed input)
                // contributes no edge.
                if !send_vc[i].is_empty() {
                    let sv = send_vc[i].clone();
                    for (c, s) in clock[d].iter_mut().zip(&sv) {
                        *c = (*c).max(*s);
                    }
                }
                clock[d][d] += 1;
                recv_vc[i] = clock[d].clone();
            }
        }
    }

    // Adjacent delivery pairs per destination, in observed order.
    let mut by_dst: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, f) in flights.iter().enumerate() {
        if (f.dst as usize) < n {
            by_dst[f.dst as usize].push(i);
        }
    }
    let mut races = Vec::new();
    for (dst, mut idxs) in by_dst.into_iter().enumerate() {
        idxs.sort_by(|&a, &b| {
            flights[a]
                .recv_at
                .total_cmp(&flights[b].recv_at)
                .then(flights[a].send_at.total_cmp(&flights[b].send_at))
        });
        for w in idxs.windows(2) {
            let (i, j) = (w[0], w[1]);
            let (fi, fj) = (&flights[i], &flights[j]);
            let simultaneous = fi.recv_at == fj.recv_at;
            // Channel FIFO: same sender, sends in matching order.
            let fifo = fi.src == fj.src && fi.send_at < fj.send_at;
            // Causally forced: the later send happens-after the earlier
            // receipt.
            let causal =
                !recv_vc[i].is_empty() && !send_vc[j].is_empty() && leq(&recv_vc[i], &send_vc[j]);
            if simultaneous || (!fifo && !causal) {
                let why = if simultaneous {
                    "they complete simultaneously".to_string()
                } else {
                    format!(
                        "p{}'s send at t = {} does not happen-after p{dst}'s receipt at \
                         t = {}, and the two use different channels",
                        fj.src, fj.send_at, fi.recv_at
                    )
                };
                races.push(Race {
                    dst: dst as u32,
                    first: fi.clone(),
                    second: fj.clone(),
                    message: format!(
                        "delivery race at p{dst}: {} from p{} (recv t = {}) vs {} from \
                         p{} (recv t = {}) — the observed order is not causally forced: {why}",
                        fi.label, fi.src, fi.recv_at, fj.label, fj.src, fj.recv_at
                    ),
                });
            }
        }
    }
    races
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fl(src: u32, dst: u32, send_at: f64, recv_at: f64, label: &str) -> Flight {
        Flight {
            src,
            dst,
            send_at,
            recv_at,
            label: label.to_string(),
        }
    }

    #[test]
    fn single_deliveries_are_race_free() {
        // A broadcast tree: every processor receives exactly once.
        let flights = vec![fl(0, 1, 0.0, 2.5, "a"), fl(0, 2, 1.0, 3.5, "b")];
        assert!(detect_races(3, &flights).is_empty());
    }

    #[test]
    fn same_channel_pipeline_is_fifo_forced() {
        // m messages p0 → p1 back to back: FIFO, no race.
        let flights = vec![
            fl(0, 1, 0.0, 2.5, "m0"),
            fl(0, 1, 1.0, 3.5, "m1"),
            fl(0, 1, 2.0, 4.5, "m2"),
        ];
        assert!(detect_races(2, &flights).is_empty());
    }

    #[test]
    fn independent_senders_race() {
        // p1 and p2 both send to p3 with nothing ordering them.
        let flights = vec![fl(1, 3, 0.0, 1.0, "a"), fl(2, 3, 0.5, 1.5, "b")];
        let races = detect_races(4, &flights);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].dst, 3);
        assert_eq!(races[0].first.label, "a");
        assert!(races[0].message.contains("not causally forced"));
    }

    #[test]
    fn relay_order_is_causally_forced() {
        // p0 → p1; p1 forwards to p2 only after receiving; meanwhile the
        // second delivery to p2 is p1's, whose send happens-after p2...
        // Construct the classic forced chain: a → c, then c's receipt is
        // relayed b-ward and b sends to c afterwards? Simpler: p0 sends
        // to p2; p2 then sends to p1; p1's send to p2 happens-after its
        // receipt from p2, which happens-after p2's first receipt.
        let flights = vec![
            fl(0, 2, 0.0, 1.0, "a"), // p2 learns at 1
            fl(2, 1, 1.0, 2.0, "b"), // p2 relays to p1
            fl(1, 2, 2.0, 3.0, "c"), // p1 replies: forced after "a"
        ];
        assert!(detect_races(3, &flights).is_empty());
    }

    #[test]
    fn simultaneous_deliveries_always_race() {
        let flights = vec![fl(0, 2, 0.0, 1.0, "a"), fl(1, 2, 0.0, 1.0, "b")];
        let races = detect_races(3, &flights);
        assert_eq!(races.len(), 1);
        assert!(races[0].message.contains("simultaneously"));
    }

    #[test]
    fn same_channel_wrong_order_is_a_race() {
        // Same channel but the "later" send arrives first (latency
        // anomaly in a wall-clock trace): not FIFO-forced.
        let flights = vec![fl(0, 1, 1.0, 2.0, "late"), fl(0, 1, 0.0, 2.5, "early")];
        let races = detect_races(2, &flights);
        assert_eq!(races.len(), 1);
    }
}
