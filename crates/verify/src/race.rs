//! Happens-before race detection over message flights.
//!
//! The detector replays a trace's flights, builds the send→receive
//! partial order, and flags pairs of deliveries to the same destination
//! whose observed order is **not causally forced** — i.e. the later
//! message's send does not happen-after the earlier message's receipt,
//! and the two do not share a sender (the postal model's fixed latency
//! makes each `src → dst` channel FIFO). Such a pair could arrive in
//! either order under latency jitter, so a program whose meaning
//! depends on the observed order is racy.
//!
//! Broadcast schedules deliver each message once per processor and are
//! race-free; the lint exists for multi-message and collective traffic
//! (`m`-message broadcast, gather, all-to-all), where it distinguishes
//! pipelines whose ordering is enforced by the channel from those that
//! merely *happened* to arrive in a convenient order.
//!
//! ## Epoch representation
//!
//! [`detect_races`] uses a FastTrack-style epoch encoding instead of
//! comparing full vector clocks. Every candidate pair shares its
//! destination `d`, and `d`'s clock component is bumped **only at
//! `d`**, so the whole happens-after test collapses to one scalar
//! comparison: the earlier flight's receipt (a `(d, epoch)` pair)
//! happens-before the later flight's send iff the sender's clock had
//! learned that epoch of `d` by send time. Per-processor clocks are
//! kept sparse (`(processor, counter)` pairs) and spill to dense arrays
//! only under real contention — a clock that has heard from more than
//! `SPARSE_LIMIT` distinct processors — so the common case is
//! O(E log E) time (the event sort) and O(E + n) memory. The retained
//! [`detect_races_reference`] is the original full-vector-clock
//! detector; `crates/verify/tests/race_differential.rs` asserts the two
//! report identical races.

//! ## Streaming detection
//!
//! [`RaceStream`] runs the same epoch algorithm over flights *pushed
//! incrementally* in send order, without holding the full flight list:
//! snapshots still drop at the matching receive, per-destination
//! pairing keeps only the previous delivery (plus the current
//! same-instant tie group), and races buffer until
//! [`RaceStream::finish`] restores the batch detector's
//! by-destination report order. `detect_races` remains the batch entry
//! point and the executable spec; the unit suite runs every case
//! through both and asserts identical output.

use crate::flight::Flight;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A pair of deliveries whose order is not causally forced.
#[derive(Debug, Clone, PartialEq)]
pub struct Race {
    /// The destination processor observing the ambiguous order.
    pub dst: u32,
    /// The earlier delivery (by observed receive time).
    pub first: Flight,
    /// The later delivery.
    pub second: Flight,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Sparse-entry count past which a clock spills to a dense array.
const SPARSE_LIMIT: usize = 64;

/// A vector clock that stays sparse until real contention.
#[derive(Clone, Debug)]
enum Clock {
    /// `(processor, counter)` pairs, sorted by processor, zeros elided.
    Sparse(Vec<(u32, u64)>),
    /// One counter per processor; used past `SPARSE_LIMIT` entries.
    Dense(Vec<u64>),
}

impl Clock {
    fn new() -> Clock {
        Clock::Sparse(Vec::new())
    }

    /// The counter for processor `p` (0 if never heard from).
    fn get(&self, p: u32) -> u64 {
        match self {
            Clock::Sparse(v) => match v.binary_search_by_key(&p, |e| e.0) {
                Ok(i) => v[i].1,
                Err(_) => 0,
            },
            Clock::Dense(v) => v[p as usize],
        }
    }

    /// Increments `p`'s counter and returns the new value (the epoch).
    fn bump(&mut self, p: u32, n: usize) -> u64 {
        let (val, spill) = match self {
            Clock::Sparse(v) => match v.binary_search_by_key(&p, |e| e.0) {
                Ok(i) => {
                    v[i].1 += 1;
                    (v[i].1, false)
                }
                Err(i) => {
                    v.insert(i, (p, 1));
                    (1, v.len() > SPARSE_LIMIT)
                }
            },
            Clock::Dense(v) => {
                v[p as usize] += 1;
                (v[p as usize], false)
            }
        };
        if spill {
            self.make_dense(n);
        }
        val
    }

    /// Raises `p`'s counter to at least `val`.
    fn raise(&mut self, p: u32, val: u64, n: usize) {
        let spill = match self {
            Clock::Sparse(v) => {
                match v.binary_search_by_key(&p, |e| e.0) {
                    Ok(i) => v[i].1 = v[i].1.max(val),
                    Err(i) => v.insert(i, (p, val)),
                }
                v.len() > SPARSE_LIMIT
            }
            Clock::Dense(v) => {
                v[p as usize] = v[p as usize].max(val);
                false
            }
        };
        if spill {
            self.make_dense(n);
        }
    }

    /// Componentwise maximum with `other`.
    fn join(&mut self, other: &Clock, n: usize) {
        match other {
            Clock::Sparse(entries) => {
                for &(p, val) in entries {
                    self.raise(p, val, n);
                }
            }
            Clock::Dense(dv) => {
                self.make_dense(n);
                let Clock::Dense(sv) = self else {
                    unreachable!()
                };
                for (a, b) in sv.iter_mut().zip(dv) {
                    *a = (*a).max(*b);
                }
            }
        }
    }

    fn make_dense(&mut self, n: usize) {
        if let Clock::Sparse(v) = self {
            let mut dense = vec![0u64; n];
            for &(p, val) in v.iter() {
                dense[p as usize] = val;
            }
            *self = Clock::Dense(dense);
        }
    }
}

/// Receives sort before sends at equal instants so that a processor
/// forwarding the moment it finishes receiving (legal in the postal
/// model) picks up the causal dependency.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Recv,
    Send,
}

fn sorted_events(flights: &[Flight]) -> Vec<(f64, Kind, usize)> {
    let mut events: Vec<(f64, Kind, usize)> = Vec::with_capacity(flights.len() * 2);
    for (i, f) in flights.iter().enumerate() {
        events.push((f.send_at, Kind::Send, i));
        events.push((f.recv_at, Kind::Recv, i));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    events
}

/// Shared pairing sweep: walks each destination's deliveries in
/// observed order and emits a [`Race`] for each adjacent pair that
/// `causally_forced` does not clear and channel FIFO does not force.
fn pair_deliveries(
    n: usize,
    flights: &[Flight],
    causally_forced: impl Fn(usize, usize) -> bool,
) -> Vec<Race> {
    // Adjacent delivery pairs per destination, in observed order.
    let mut by_dst: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, f) in flights.iter().enumerate() {
        if (f.dst as usize) < n {
            by_dst[f.dst as usize].push(i);
        }
    }
    let mut races = Vec::new();
    for (dst, mut idxs) in by_dst.into_iter().enumerate() {
        idxs.sort_by(|&a, &b| {
            flights[a]
                .recv_at
                .total_cmp(&flights[b].recv_at)
                .then(flights[a].send_at.total_cmp(&flights[b].send_at))
        });
        for w in idxs.windows(2) {
            let (i, j) = (w[0], w[1]);
            let (fi, fj) = (&flights[i], &flights[j]);
            let simultaneous = fi.recv_at == fj.recv_at;
            // Channel FIFO: same sender, sends in matching order.
            let fifo = fi.src == fj.src && fi.send_at < fj.send_at;
            // Causally forced: the later send happens-after the earlier
            // receipt.
            let causal = causally_forced(i, j);
            if simultaneous || (!fifo && !causal) {
                let why = if simultaneous {
                    "they complete simultaneously".to_string()
                } else {
                    format!(
                        "p{}'s send at t = {} does not happen-after p{dst}'s receipt at \
                         t = {}, and the two use different channels",
                        fj.src, fj.send_at, fi.recv_at
                    )
                };
                races.push(Race {
                    dst: dst as u32,
                    first: fi.clone(),
                    second: fj.clone(),
                    message: format!(
                        "delivery race at p{dst}: {} from p{} (recv t = {}) vs {} from \
                         p{} (recv t = {}) — the observed order is not causally forced: {why}",
                        fi.label, fi.src, fi.recv_at, fj.label, fj.src, fj.recv_at
                    ),
                });
            }
        }
    }
    races
}

/// Detects delivery races in `flights` over `n` processors.
///
/// Returns one [`Race`] per *adjacent* unforced pair at each
/// destination (forcedness is transitive along a destination's delivery
/// sequence, so adjacent pairs characterize the whole order).
///
/// This is the epoch-based fast path; every candidate pair shares a
/// destination `d`, so "the later send happens-after the earlier
/// receipt" reduces to comparing the sender's knowledge of `d`'s clock
/// against the receipt's epoch at `d` — two `u64`s per pair instead of
/// two length-`n` vectors. Message clocks stay sparse until a clock
/// accumulates entries from more than `SPARSE_LIMIT` distinct
/// processors, and each in-flight snapshot is dropped at its matching
/// receive, so memory stays O(E + n) unless flights are pathologically
/// nested.
pub fn detect_races(n: u32, flights: &[Flight]) -> Vec<Race> {
    let nn = n as usize;
    let mut clock: Vec<Clock> = (0..nn).map(|_| Clock::new()).collect();
    // Per-flight causal metadata. `snapshot` holds the sender's clock
    // only while the message is in flight: set at the send, consumed by
    // the matching receive's join.
    let mut snapshot: Vec<Option<Clock>> = vec![None; flights.len()];
    let mut send_at_dst = vec![0u64; flights.len()];
    let mut recv_epoch = vec![0u64; flights.len()];
    for (_, kind, i) in sorted_events(flights) {
        let f = &flights[i];
        match kind {
            Kind::Send => {
                let p = f.src as usize;
                clock[p].bump(f.src, nn);
                // What the sender knows of the destination's clock the
                // instant the message departs.
                send_at_dst[i] = clock[p].get(f.dst);
                snapshot[i] = Some(clock[p].clone());
            }
            Kind::Recv => {
                let d = f.dst as usize;
                // A flight whose send never happened (malformed input)
                // has no snapshot yet and contributes no edge.
                if let Some(sv) = snapshot[i].take() {
                    clock[d].join(&sv, nn);
                }
                recv_epoch[i] = clock[d].bump(f.dst, nn);
            }
        }
    }

    // `d`'s component is bumped only at `d`, so the sender of `j` has
    // joined in `i`'s receipt (or anything after it) iff its view of
    // `d`'s clock reached `i`'s receive epoch.
    pair_deliveries(nn, flights, |i, j| send_at_dst[j] >= recv_epoch[i])
}

/// A timed event key with the same total order as [`sorted_events`]:
/// time (IEEE total order), then receives before sends, then push
/// order.
#[derive(Clone, Copy, PartialEq)]
struct EventKey(f64, Kind, u64);

impl Eq for EventKey {}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &EventKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKey {
    fn cmp(&self, other: &EventKey) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then(self.1.cmp(&other.1))
            .then(self.2.cmp(&other.2))
    }
}

/// One delivery's pairing record: everything the adjacent-pair check
/// needs once the flight list itself is gone.
struct Delivery {
    flight: Flight,
    /// The sender's view of the destination's clock at send time.
    send_at_dst: u64,
    /// The destination's epoch stamped on this receipt.
    recv_epoch: u64,
}

/// Per-destination pairing state: the last finalized delivery plus the
/// still-open group of deliveries sharing the current receive instant
/// (batch order sorts those by send time, so they stay buffered until a
/// later receive closes the group).
#[derive(Default)]
struct DstState {
    prev: Option<Delivery>,
    group: Vec<Delivery>,
}

/// The streaming counterpart of [`detect_races`]: push flights in
/// ascending send order, collect the identical race report from
/// [`finish`](RaceStream::finish).
///
/// Internally the two events of each pushed flight are parked in a
/// min-heap and processed — in exactly `sorted_events` order —
/// once the *send-time frontier* (the largest send time pushed so far)
/// strictly passes them: a later push can never introduce an earlier
/// event, so the epoch updates replay the batch sweep. Memory is
/// O(n + in-flight + races): a flight's clock snapshot and record are
/// dropped when its receive is processed, and pairing holds one
/// previous delivery per destination. A push that violates the send
/// order (or a flight received before it was sent) sets
/// [`out_of_order`](RaceStream::out_of_order); the report is then
/// unreliable and [`detect_races`] should be used instead.
pub struct RaceStream {
    n: u32,
    clock: Vec<Clock>,
    /// Flights whose events are not both processed yet, by push index.
    in_flight: HashMap<u64, Flight>,
    /// Set at the send event, taken at the matching receive:
    /// `(send_at_dst, sender clock snapshot)`.
    causal: HashMap<u64, (u64, Clock)>,
    events: BinaryHeap<Reverse<EventKey>>,
    by_dst: HashMap<u32, DstState>,
    /// `(dst, races in delivery order)` accumulator; sorted by
    /// destination at finish to match the batch report order.
    races: Vec<(u32, Race)>,
    next_seq: u64,
    /// Largest send time pushed so far: events strictly below it are
    /// final.
    frontier: f64,
    out_of_order: bool,
}

impl RaceStream {
    /// Creates a detector for `n` processors.
    pub fn new(n: u32) -> RaceStream {
        RaceStream {
            n,
            clock: (0..n).map(|_| Clock::new()).collect(),
            in_flight: HashMap::new(),
            causal: HashMap::new(),
            events: BinaryHeap::new(),
            by_dst: HashMap::new(),
            races: Vec::new(),
            next_seq: 0,
            frontier: f64::NEG_INFINITY,
            out_of_order: false,
        }
    }

    /// Pushes the next flight. Flights must arrive in ascending
    /// `send_at` order (ties free); a violation sets the
    /// [`out_of_order`](RaceStream::out_of_order) flag.
    pub fn push(&mut self, flight: Flight) {
        // A push below the frontier breaks the replay order; a receive
        // before its own send means the send-time epoch view cannot be
        // captured before pairing needs it. Either way the batch
        // detector is the reliable fallback.
        if flight.send_at < self.frontier || flight.recv_at < flight.send_at {
            self.out_of_order = true;
        }
        self.frontier = self.frontier.max(flight.send_at);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events
            .push(Reverse(EventKey(flight.send_at, Kind::Send, seq)));
        self.events
            .push(Reverse(EventKey(flight.recv_at, Kind::Recv, seq)));
        self.in_flight.insert(seq, flight);
        self.drain_below(self.frontier);
    }

    /// Processes every parked event strictly below `limit` (events *at*
    /// the frontier stay pending: a later push may still tie with
    /// them).
    fn drain_below(&mut self, limit: f64) {
        while let Some(&Reverse(key)) = self.events.peek() {
            if key.0 >= limit {
                return;
            }
            self.events.pop();
            self.process(key);
        }
    }

    fn process(&mut self, EventKey(_, kind, seq): EventKey) {
        let nn = self.n as usize;
        match kind {
            Kind::Send => {
                let f = &self.in_flight[&seq];
                let p = f.src as usize;
                let (src, dst) = (f.src, f.dst);
                self.clock[p].bump(src, nn);
                let send_at_dst = self.clock[p].get(dst);
                self.causal
                    .insert(seq, (send_at_dst, self.clock[p].clone()));
            }
            Kind::Recv => {
                let f = self.in_flight.remove(&seq).expect("recv after send parked");
                let d = f.dst as usize;
                // A flight whose send event was somehow never processed
                // (out-of-order input) contributes no edge, matching
                // the batch detector's missing-snapshot tolerance.
                let send_at_dst = match self.causal.remove(&seq) {
                    Some((send_at_dst, sv)) => {
                        self.clock[d].join(&sv, nn);
                        send_at_dst
                    }
                    None => 0,
                };
                let recv_epoch = self.clock[d].bump(f.dst, nn);
                if f.dst < self.n {
                    let delivery = Delivery {
                        flight: f,
                        send_at_dst,
                        recv_epoch,
                    };
                    let dst = delivery.flight.dst;
                    let state = self.by_dst.entry(dst).or_default();
                    // Receives are processed in receive-time order, so
                    // a strictly later receipt closes the current
                    // same-instant group.
                    if state
                        .group
                        .first()
                        .is_some_and(|g| delivery.flight.recv_at > g.flight.recv_at)
                    {
                        Self::flush_group(state, &mut self.races);
                    }
                    state.group.push(delivery);
                }
            }
        }
    }

    /// Closes a destination's same-instant group: batch order sorts the
    /// group by send time (stable, so push order breaks full ties) and
    /// pairs each adjacent delivery.
    fn flush_group(state: &mut DstState, races: &mut Vec<(u32, Race)>) {
        state
            .group
            .sort_by(|a, b| a.flight.send_at.total_cmp(&b.flight.send_at));
        for next in state.group.drain(..) {
            if let Some(prev) = state.prev.take() {
                Self::check_pair(&prev, &next, races);
            }
            state.prev = Some(next);
        }
    }

    /// The batch detector's adjacent-pair verdict, verbatim.
    fn check_pair(first: &Delivery, second: &Delivery, races: &mut Vec<(u32, Race)>) {
        let (fi, fj) = (&first.flight, &second.flight);
        let dst = fi.dst;
        let simultaneous = fi.recv_at == fj.recv_at;
        // Channel FIFO: same sender, sends in matching order.
        let fifo = fi.src == fj.src && fi.send_at < fj.send_at;
        // Causally forced: the later send happens-after the earlier
        // receipt.
        let causal = second.send_at_dst >= first.recv_epoch;
        if simultaneous || (!fifo && !causal) {
            let why = if simultaneous {
                "they complete simultaneously".to_string()
            } else {
                format!(
                    "p{}'s send at t = {} does not happen-after p{dst}'s receipt at \
                     t = {}, and the two use different channels",
                    fj.src, fj.send_at, fi.recv_at
                )
            };
            races.push((
                dst,
                Race {
                    dst,
                    first: fi.clone(),
                    second: fj.clone(),
                    message: format!(
                        "delivery race at p{dst}: {} from p{} (recv t = {}) vs {} from \
                         p{} (recv t = {}) — the observed order is not causally forced: {why}",
                        fi.label, fi.src, fi.recv_at, fj.label, fj.src, fj.recv_at
                    ),
                },
            ));
        }
    }

    /// True when a flight arrived out of send order (or claimed a
    /// receive before its own send): the streamed report may not match
    /// [`detect_races`].
    pub fn out_of_order(&self) -> bool {
        self.out_of_order
    }

    /// Processes every remaining event and returns all races, in the
    /// batch detector's order (ascending destination, delivery order
    /// within a destination).
    pub fn finish(mut self) -> Vec<Race> {
        self.drain_below(f64::INFINITY);
        let mut dsts: Vec<u32> = self.by_dst.keys().copied().collect();
        dsts.sort_unstable();
        for dst in dsts {
            let mut state = self.by_dst.remove(&dst).unwrap();
            Self::flush_group(&mut state, &mut self.races);
        }
        let mut races = std::mem::take(&mut self.races);
        races.sort_by_key(|(dst, _)| *dst);
        races.into_iter().map(|(_, r)| r).collect()
    }
}

/// The original full-vector-clock detector, kept verbatim as the
/// differential oracle for [`detect_races`]. O(E·n) time and memory;
/// do not optimize this function — its value is that it never changes.
pub fn detect_races_reference(n: u32, flights: &[Flight]) -> Vec<Race> {
    let n = n as usize;
    fn leq(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).all(|(x, y)| x <= y)
    }
    let mut clock: Vec<Vec<u64>> = vec![vec![0; n]; n];
    let mut send_vc: Vec<Vec<u64>> = vec![Vec::new(); flights.len()];
    let mut recv_vc: Vec<Vec<u64>> = vec![Vec::new(); flights.len()];
    for (_, kind, i) in sorted_events(flights) {
        let f = &flights[i];
        match kind {
            Kind::Send => {
                let p = f.src as usize;
                clock[p][p] += 1;
                send_vc[i] = clock[p].clone();
            }
            Kind::Recv => {
                let d = f.dst as usize;
                // A flight whose send never happened (malformed input)
                // contributes no edge.
                if !send_vc[i].is_empty() {
                    let sv = send_vc[i].clone();
                    for (c, s) in clock[d].iter_mut().zip(&sv) {
                        *c = (*c).max(*s);
                    }
                }
                clock[d][d] += 1;
                recv_vc[i] = clock[d].clone();
            }
        }
    }
    pair_deliveries(n, flights, |i, j| {
        !recv_vc[i].is_empty() && !send_vc[j].is_empty() && leq(&recv_vc[i], &send_vc[j])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fl(src: u32, dst: u32, send_at: f64, recv_at: f64, label: &str) -> Flight {
        Flight {
            src,
            dst,
            send_at,
            recv_at,
            label: label.to_string(),
        }
    }

    /// All three detectors, asserting they agree before returning. The
    /// streaming detector is fed in send order, as its contract
    /// requires.
    fn detect_both(n: u32, flights: &[Flight]) -> Vec<Race> {
        let fast = detect_races(n, flights);
        let slow = detect_races_reference(n, flights);
        assert_eq!(fast, slow, "epoch and vector-clock detectors diverge");
        let mut sorted = flights.to_vec();
        sorted.sort_by(|a, b| a.send_at.total_cmp(&b.send_at));
        let mut stream = RaceStream::new(n);
        for f in sorted {
            stream.push(f);
        }
        assert!(!stream.out_of_order());
        assert_eq!(stream.finish(), fast, "streaming detector diverges");
        fast
    }

    #[test]
    fn single_deliveries_are_race_free() {
        // A broadcast tree: every processor receives exactly once.
        let flights = vec![fl(0, 1, 0.0, 2.5, "a"), fl(0, 2, 1.0, 3.5, "b")];
        assert!(detect_both(3, &flights).is_empty());
    }

    #[test]
    fn same_channel_pipeline_is_fifo_forced() {
        // m messages p0 → p1 back to back: FIFO, no race.
        let flights = vec![
            fl(0, 1, 0.0, 2.5, "m0"),
            fl(0, 1, 1.0, 3.5, "m1"),
            fl(0, 1, 2.0, 4.5, "m2"),
        ];
        assert!(detect_both(2, &flights).is_empty());
    }

    #[test]
    fn independent_senders_race() {
        // p1 and p2 both send to p3 with nothing ordering them.
        let flights = vec![fl(1, 3, 0.0, 1.0, "a"), fl(2, 3, 0.5, 1.5, "b")];
        let races = detect_both(4, &flights);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].dst, 3);
        assert_eq!(races[0].first.label, "a");
        assert!(races[0].message.contains("not causally forced"));
    }

    #[test]
    fn relay_order_is_causally_forced() {
        // p0 → p1; p1 forwards to p2 only after receiving; meanwhile the
        // second delivery to p2 is p1's, whose send happens-after p2...
        // Construct the classic forced chain: a → c, then c's receipt is
        // relayed b-ward and b sends to c afterwards? Simpler: p0 sends
        // to p2; p2 then sends to p1; p1's send to p2 happens-after its
        // receipt from p2, which happens-after p2's first receipt.
        let flights = vec![
            fl(0, 2, 0.0, 1.0, "a"), // p2 learns at 1
            fl(2, 1, 1.0, 2.0, "b"), // p2 relays to p1
            fl(1, 2, 2.0, 3.0, "c"), // p1 replies: forced after "a"
        ];
        assert!(detect_both(3, &flights).is_empty());
    }

    #[test]
    fn simultaneous_deliveries_always_race() {
        let flights = vec![fl(0, 2, 0.0, 1.0, "a"), fl(1, 2, 0.0, 1.0, "b")];
        let races = detect_both(3, &flights);
        assert_eq!(races.len(), 1);
        assert!(races[0].message.contains("simultaneously"));
    }

    #[test]
    fn same_channel_wrong_order_is_a_race() {
        // Same channel but the "later" send arrives first (latency
        // anomaly in a wall-clock trace): not FIFO-forced.
        let flights = vec![fl(0, 1, 1.0, 2.0, "late"), fl(0, 1, 0.0, 2.5, "early")];
        let races = detect_both(2, &flights);
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn clocks_spill_to_dense_past_the_sparse_limit() {
        // A gather onto p0 from more distinct senders than SPARSE_LIMIT:
        // p0's clock must spill, and the spill must not change reports.
        // Staggered by a full unit so nothing is simultaneous; every
        // pair at p0 has distinct senders and no causal path, so each
        // adjacent pair races.
        let n = (SPARSE_LIMIT + 8) as u32;
        let flights: Vec<Flight> = (1..n)
            .map(|p| fl(p, 0, p as f64, p as f64 + 2.0, "g"))
            .collect();
        let races = detect_both(n, &flights);
        assert_eq!(races.len(), flights.len() - 1);
    }
}
