//! # postal-verify
//!
//! Static analyzer for postal-model schedules and traces, companion to
//! `postal-model`'s [lint engine](postal_model::lint):
//!
//! * **Lint access** — re-exports the engine's stable codes
//!   `P0001`–`P0007` ([`LintCode`]), [`Diagnostic`]s and
//!   [`lint_schedule`], plus `assert_*` helpers that panic with fully
//!   rendered reports (for use in algorithm test suites);
//! * **Trace analysis** — [`flight::schedule_from_trace`] converts an
//!   event-engine [`postal_sim::Trace`] back into a static
//!   [`Schedule`] so executions are
//!   linted by the same rules as hand-written schedules
//!   ([`lint_trace`]);
//! * **Race detection** — [`race::detect_races`] replays a trace's
//!   flights, builds the send→receive happens-before order with
//!   FastTrack-style epochs (O(E + n) in the common case), and flags
//!   deliveries whose observed order is not causally forced (see
//!   [`race`]);
//! * **Interchange** — [`json`] reads and writes the `postal lint`
//!   schedule format, and [`render`] prints rustc-style reports.
//!
//! ## Quick example
//!
//! ```
//! use postal_verify::{json, lint_schedule, LintCode, LintOptions};
//!
//! let file = json::parse_schedule(
//!     r#"{ "n": 3, "lambda": "5/2",
//!          "sends": [ { "src": 0, "dst": 1, "at": "0" },
//!                     { "src": 1, "dst": 2, "at": "1" } ] }"#,
//! ).unwrap();
//! let diags = lint_schedule(&file.schedule, &LintOptions::default());
//! // p1 forwards at t = 1 but only knows the message at t = 5/2:
//! assert_eq!(diags[0].code, LintCode::CausalityViolation);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flight;
pub mod json;
pub mod race;
pub mod render;

pub use flight::{flights_from_deliveries, flights_from_trace, schedule_from_trace, Flight};
pub use postal_model::lint::{
    is_clean, lint_schedule, lint_schedule_with_topology, max_severity, Diagnostic, LintCode,
    LintOptions, Severity,
};
pub use postal_model::{Topology, TopologyError, TopologySpec};
pub use postal_obs::ObsError;
pub use race::{detect_races, Race, RaceStream};

use postal_model::latency::Latency;
use postal_model::schedule::Schedule;
use postal_sim::Trace;

/// Lints `schedule` and panics with a rendered report if any diagnostic
/// reaches `threshold`. Returns the diagnostics otherwise, so callers
/// can make further assertions (e.g. on warnings).
///
/// # Panics
/// When the schedule is not clean at `threshold`.
pub fn assert_clean(
    schedule: &Schedule,
    opts: &LintOptions,
    threshold: Severity,
    context: &str,
) -> Vec<Diagnostic> {
    let diags = lint_schedule(schedule, opts);
    if !is_clean(&diags, threshold) {
        panic!(
            "schedule not lint-clean at {threshold} ({context}):\n{}",
            render::render_report(&diags, context)
        );
    }
    diags
}

/// Asserts a schedule is a valid broadcast: no error-severity lints
/// under [`LintOptions::default`]. The standard check every broadcast
/// algorithm's tests run against its emitted schedule.
///
/// # Panics
/// When any `P0001`–`P0005` (or an impossible `P0007`) fires.
pub fn assert_broadcast_clean(schedule: &Schedule, context: &str) -> Vec<Diagnostic> {
    assert_clean(schedule, &LintOptions::default(), Severity::Error, context)
}

/// Asserts only the port rules (`P0001`, `P0002`, `P0004`) — for
/// schedules that are not single-source broadcasts (gather, all-to-all,
/// multi-message traffic).
///
/// # Panics
/// When any port-rule lint fires.
pub fn assert_ports_clean(schedule: &Schedule, context: &str) -> Vec<Diagnostic> {
    assert_clean(
        schedule,
        &LintOptions::ports_only(),
        Severity::Error,
        context,
    )
}

/// The combined result of linting a trace.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Schedule-level lint findings for the trace's implied schedule.
    pub diagnostics: Vec<Diagnostic>,
    /// Delivery races found by the happens-before detector.
    pub races: Vec<Race>,
}

impl TraceReport {
    /// True when no diagnostic reaches `threshold` (races are reported
    /// separately — they are properties of the traffic pattern, not
    /// violations).
    pub fn is_clean(&self, threshold: Severity) -> bool {
        is_clean(&self.diagnostics, threshold)
    }
}

/// Lints an event-engine trace: converts it to a schedule, runs the
/// schedule lints with `opts`, and runs the happens-before race
/// detector over the trace's flights.
pub fn lint_trace<P>(
    trace: &Trace<P>,
    n: u32,
    latency: Latency,
    opts: &LintOptions,
) -> TraceReport {
    let schedule = schedule_from_trace(trace, n, latency);
    TraceReport {
        diagnostics: lint_schedule(&schedule, opts),
        races: detect_races(n, &flights_from_trace(trace)),
    }
}

/// Parses an observability JSONL log (as written by
/// `postal_obs::to_jsonl` or `postal-cli simulate --events-out`) back
/// into the static schedule its send events realized, ready for
/// [`lint_schedule`].
///
/// # Errors
/// When the text is not a well-formed event log or carries no uniform λ.
pub fn schedule_from_jsonl(text: &str) -> Result<Schedule, ObsError> {
    jsonl_to_schedule_file(std::io::Cursor::new(text)).map(|f| f.schedule)
}

/// Streaming counterpart of [`schedule_from_jsonl`]: folds an
/// observability JSONL log, line by line, directly into the schedule
/// its send events realized — without materializing the log text or
/// the full event list. Non-send events are parsed (so errors are still
/// caught) and dropped; memory is O(sends), not O(events).
///
/// Takes any [`BufRead`](std::io::BufRead), so both in-memory text
/// (via [`std::io::Cursor`]) and buffered file readers feed it.
///
/// # Errors
/// When the reader fails, a line cannot be parsed, the log has no
/// `"run"` header, or the header carries no uniform λ.
pub fn jsonl_to_schedule_file<R: std::io::BufRead>(
    reader: R,
) -> Result<json::ScheduleFile, ObsError> {
    let mut parser = postal_obs::JsonlParser::new();
    let mut sends = Vec::new();
    let mut truncated = false;
    for line in reader.lines() {
        let line = line.map_err(|e| ObsError(format!("read error: {e}")))?;
        match parser.line(&line)? {
            Some(postal_obs::ObsEvent::Send {
                src, dst, start, ..
            }) => {
                sends.push(postal_model::schedule::TimedSend {
                    src,
                    dst,
                    send_start: start,
                });
            }
            Some(postal_obs::ObsEvent::Truncated { .. }) => truncated = true,
            _ => {}
        }
    }
    let meta = parser.finish()?;
    let lambda = meta
        .lambda
        .ok_or_else(|| ObsError("log has no uniform lambda; cannot reduce to a schedule".into()))?;
    Ok(json::ScheduleFile {
        schedule: Schedule::new(meta.n, lambda, sends),
        messages: meta.messages,
        dropped_events: meta.dropped_events,
        sample: meta.sample,
        truncated,
        topology: None,
    })
}

/// Downgrades absence-based lints on a partial trace.
///
/// A sampled or ring-overflowed log (header `"dropped" > 0`) is missing
/// events, so `P0003` (causality) and `P0005` (coverage) findings may be
/// artifacts of the missing data rather than real violations: a
/// forwarding send whose triggering receive was sampled away looks
/// acausal, and a processor whose informing send was dropped looks
/// uninformed. When `dropped > 0` this rewrites those two codes from
/// [`Severity::Error`] to [`Severity::Warn`] and annotates the message;
/// port-overlap and shape lints (`P0001`, `P0002`, `P0004`) fire on the
/// events that *are* present, so they keep their severity. With
/// `dropped == 0` the diagnostics pass through untouched.
///
/// Composes with [`downgrade_truncated_trace`] in either order: a
/// finding already downgraded for truncation is rewritten to carry
/// **one** combined note naming both causes, never two stacked ones.
pub fn downgrade_partial_trace(diags: Vec<Diagnostic>, dropped: u64) -> Vec<Diagnostic> {
    if dropped == 0 {
        return diags;
    }
    diags
        .into_iter()
        .map(|mut d| {
            let absence_based = matches!(
                d.code,
                LintCode::CausalityViolation | LintCode::UninformedProcessor
            );
            if absence_based {
                if d.severity == Severity::Error {
                    d.severity = Severity::Warn;
                    d.message.push_str(&format!(
                        " (downgraded: trace is partial, {dropped} events dropped by sampling)"
                    ));
                } else if d.severity == Severity::Warn && d.message.ends_with(TRUNCATED_SUFFIX) {
                    // Already downgraded for truncation: merge into the
                    // combined note rather than stacking a second one.
                    d.message.truncate(d.message.len() - TRUNCATED_SUFFIX.len());
                    d.message.push_str(&format!(
                        " (downgraded: trace is partial, {dropped} events dropped by sampling \
                         and run truncated by the event budget)"
                    ));
                }
            }
            d
        })
        .collect()
}

/// The note [`downgrade_truncated_trace`] appends, recognized by
/// [`downgrade_partial_trace`] when merging the two causes.
const TRUNCATED_SUFFIX: &str = " (downgraded: run truncated by the event budget, trace ends early)";

/// The tail of the note [`downgrade_partial_trace`] appends, recognized
/// by [`downgrade_truncated_trace`] when merging the two causes.
const SAMPLING_SUFFIX: &str = " events dropped by sampling)";

/// Downgrades absence-based lints on a truncated trace.
///
/// When the engine aborts on its event budget it emits a final
/// `truncated` event and the log simply *stops*: every send that would
/// have happened after the cutoff is missing. As with sampling
/// ([`downgrade_partial_trace`]), the absence-based codes `P0003`
/// (causality) and `P0005` (coverage) then report artifacts of the
/// missing tail, not real violations — a processor the run never got
/// around to informing is not evidence the algorithm skips it. With
/// `truncated == true` this rewrites those two codes from
/// [`Severity::Error`] to [`Severity::Warn`] and annotates the message;
/// presence-based lints keep their severity. With `truncated == false`
/// the diagnostics pass through untouched.
///
/// Composes with [`downgrade_partial_trace`] in either order: a
/// finding already downgraded for sampling is rewritten to carry
/// **one** combined note naming both causes, never two stacked ones.
pub fn downgrade_truncated_trace(diags: Vec<Diagnostic>, truncated: bool) -> Vec<Diagnostic> {
    if !truncated {
        return diags;
    }
    diags
        .into_iter()
        .map(|mut d| {
            let absence_based = matches!(
                d.code,
                LintCode::CausalityViolation | LintCode::UninformedProcessor
            );
            if absence_based {
                if d.severity == Severity::Error {
                    d.severity = Severity::Warn;
                    d.message.push_str(TRUNCATED_SUFFIX);
                } else if d.severity == Severity::Warn && d.message.ends_with(SAMPLING_SUFFIX) {
                    // Already downgraded for sampling: extend its note
                    // in place into the combined form.
                    d.message.truncate(d.message.len() - 1);
                    d.message
                        .push_str(" and run truncated by the event budget)");
                }
            }
            d
        })
        .collect()
}

/// Lints an observability JSONL log end to end: parse the event stream,
/// reduce it to a schedule, and run the schedule lints with `opts`.
/// This closes the loop between the runtime exporters and the static
/// analyzer — a recorded run can be re-checked offline.
///
/// Partial logs are tolerated: when the header declares dropped events
/// or the stream ends in a `truncated` event (engine event-budget
/// abort), absence-based findings are downgraded via
/// [`downgrade_partial_trace`] / [`downgrade_truncated_trace`] instead
/// of reported as false-positive errors.
///
/// # Errors
/// When the text cannot be parsed or reduced to a schedule.
pub fn lint_jsonl(text: &str, opts: &LintOptions) -> Result<Vec<Diagnostic>, ObsError> {
    let file = jsonl_to_schedule_file(std::io::Cursor::new(text))?;
    let diags = lint_schedule(&file.schedule, opts);
    let diags = downgrade_partial_trace(diags, file.dropped_events.unwrap_or(0));
    Ok(downgrade_truncated_trace(diags, file.truncated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::schedule::TimedSend;
    use postal_model::time::Time;

    fn line3() -> Schedule {
        let lam = Latency::from_ratio(5, 2);
        Schedule::new(
            3,
            lam,
            vec![
                TimedSend {
                    src: 0,
                    dst: 1,
                    send_start: Time::ZERO,
                },
                TimedSend {
                    src: 1,
                    dst: 2,
                    send_start: Time::new(5, 2),
                },
            ],
        )
    }

    #[test]
    fn assert_broadcast_clean_accepts_valid_and_reports_warnings() {
        let diags = assert_broadcast_clean(&line3(), "line3");
        // The line is valid but suboptimal: quality lints may be present.
        assert!(is_clean(&diags, Severity::Error));
        assert!(diags.iter().any(|d| d.code == LintCode::OptimalityGap));
    }

    #[test]
    #[should_panic(expected = "P0003")]
    fn assert_broadcast_clean_panics_with_code() {
        let lam = Latency::from_ratio(5, 2);
        let bad = Schedule::new(
            3,
            lam,
            vec![
                TimedSend {
                    src: 0,
                    dst: 1,
                    send_start: Time::ZERO,
                },
                TimedSend {
                    src: 1,
                    dst: 2,
                    send_start: Time::ONE,
                },
            ],
        );
        assert_broadcast_clean(&bad, "bad");
    }

    #[test]
    fn lint_jsonl_round_trips_a_recorded_run() {
        use postal_obs::{to_jsonl, ObsEvent, ObsLog, RunMeta};
        let lam = Latency::from_ratio(5, 2);
        let log = ObsLog::new(
            RunMeta::new("event", 3).latency(lam).messages(1),
            vec![
                ObsEvent::Send {
                    seq: 0,
                    src: 0,
                    dst: 1,
                    start: Time::ZERO,
                    finish: Time::ONE,
                },
                ObsEvent::Send {
                    seq: 1,
                    src: 1,
                    dst: 2,
                    start: Time::new(5, 2),
                    finish: Time::new(7, 2),
                },
            ],
        );
        let text = to_jsonl(&log);
        let schedule = schedule_from_jsonl(&text).unwrap();
        assert_eq!(schedule.sends().len(), 2);
        let diags = lint_jsonl(&text, &LintOptions::default()).unwrap();
        assert!(is_clean(&diags, Severity::Error));
    }

    #[test]
    fn lint_jsonl_rejects_garbage() {
        assert!(lint_jsonl("not json", &LintOptions::default()).is_err());
    }

    /// A log missing its first send (sampled away): p1 forwards a
    /// message it never visibly received.
    fn partial_log(dropped: u64) -> String {
        use postal_obs::{to_jsonl, ObsEvent, ObsLog, RunMeta};
        let lam = Latency::from_ratio(5, 2);
        let mut meta = RunMeta::new("event", 3).latency(lam).messages(1);
        if dropped > 0 {
            meta = meta.dropped(dropped).sampled("rate:2");
        }
        to_jsonl(&ObsLog::new(
            meta,
            vec![ObsEvent::Send {
                seq: 1,
                src: 1,
                dst: 2,
                start: Time::new(5, 2),
                finish: Time::new(7, 2),
            }],
        ))
    }

    #[test]
    fn sampled_logs_downgrade_absence_lints() {
        // Complete log: the missing informing send is a real error.
        let full = lint_jsonl(&partial_log(0), &LintOptions::default()).unwrap();
        assert!(full
            .iter()
            .any(|d| d.code == LintCode::CausalityViolation && d.severity == Severity::Error));
        assert!(full
            .iter()
            .any(|d| d.code == LintCode::UninformedProcessor && d.severity == Severity::Error));

        // Same events, but the header admits drops: downgraded to warnings.
        let sampled = lint_jsonl(&partial_log(3), &LintOptions::default()).unwrap();
        assert!(is_clean(&sampled, Severity::Error), "{sampled:?}");
        let causality = sampled
            .iter()
            .find(|d| d.code == LintCode::CausalityViolation)
            .expect("finding still reported, just softer");
        assert_eq!(causality.severity, Severity::Warn);
        assert!(causality.message.contains("3 events dropped"));
        assert!(sampled
            .iter()
            .any(|d| d.code == LintCode::UninformedProcessor && d.severity == Severity::Warn));
    }

    #[test]
    fn jsonl_schedule_file_carries_drop_metadata() {
        let file = jsonl_to_schedule_file(std::io::Cursor::new(partial_log(7).as_bytes())).unwrap();
        assert!(file.is_partial());
        assert_eq!(file.dropped_events, Some(7));
        assert_eq!(file.sample.as_deref(), Some("rate:2"));
        let complete =
            jsonl_to_schedule_file(std::io::Cursor::new(partial_log(0).as_bytes())).unwrap();
        assert!(!complete.is_partial());
    }

    /// The same incomplete trace as [`partial_log`], but cut short by
    /// the engine's event budget instead of recorder sampling: the log
    /// ends in a `truncated` event and the header admits no drops.
    fn truncated_log() -> String {
        use postal_obs::{to_jsonl, ObsEvent, ObsLog, RunMeta};
        let lam = Latency::from_ratio(5, 2);
        to_jsonl(&ObsLog::new(
            RunMeta::new("event", 3).latency(lam).messages(1),
            vec![
                ObsEvent::Send {
                    seq: 1,
                    src: 1,
                    dst: 2,
                    start: Time::new(5, 2),
                    finish: Time::new(7, 2),
                },
                ObsEvent::Truncated {
                    processed: 2,
                    limit: 2,
                    at: Time::new(7, 2),
                },
            ],
        ))
    }

    #[test]
    fn truncated_logs_downgrade_absence_lints() {
        let file =
            jsonl_to_schedule_file(std::io::Cursor::new(truncated_log().as_bytes())).unwrap();
        assert!(file.truncated);
        assert!(file.is_partial(), "truncation alone makes a trace partial");
        assert_eq!(file.dropped_events, None);

        let diags = lint_jsonl(&truncated_log(), &LintOptions::default()).unwrap();
        assert!(is_clean(&diags, Severity::Error), "{diags:?}");
        let causality = diags
            .iter()
            .find(|d| d.code == LintCode::CausalityViolation)
            .expect("finding still reported, just softer");
        assert_eq!(causality.severity, Severity::Warn);
        assert!(causality.message.contains("truncated by the event budget"));
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::UninformedProcessor && d.severity == Severity::Warn));
    }

    /// A trace can be sampled *and* budget-truncated at once; the two
    /// downgrades must then merge into one combined note, identically
    /// in either application order.
    #[test]
    fn sampled_and_truncated_downgrades_compose() {
        use postal_model::lint::lint_schedule;

        let file =
            jsonl_to_schedule_file(std::io::Cursor::new(truncated_log().as_bytes())).unwrap();
        let base = lint_schedule(&file.schedule, &LintOptions::default());

        let partial_first =
            downgrade_truncated_trace(downgrade_partial_trace(base.clone(), 3), true);
        let truncated_first =
            downgrade_partial_trace(downgrade_truncated_trace(base.clone(), true), 3);
        assert_eq!(partial_first, truncated_first);

        let causality = partial_first
            .iter()
            .find(|d| d.code == LintCode::CausalityViolation)
            .expect("finding still reported, just softer");
        assert_eq!(causality.severity, Severity::Warn);
        assert!(
            causality.message.ends_with(
                "(downgraded: trace is partial, 3 events dropped by sampling \
                 and run truncated by the event budget)"
            ),
            "{}",
            causality.message
        );
        // One combined note, not two stacked ones.
        assert_eq!(causality.message.matches("(downgraded:").count(), 1);

        // Re-applying either downgrade is a no-op on the merged form.
        assert_eq!(
            downgrade_partial_trace(partial_first.clone(), 3),
            partial_first
        );
        assert_eq!(
            downgrade_truncated_trace(partial_first.clone(), true),
            partial_first
        );
    }
}
