//! Minimal JSON codec for schedules and diagnostics.
//!
//! The workspace builds hermetically (no external crates), so this is a
//! small hand-rolled parser/emitter for the one format the tools need:
//!
//! ```json
//! {
//!   "n": 3,
//!   "lambda": "5/2",
//!   "messages": 1,
//!   "sends": [
//!     { "src": 0, "dst": 1, "at": "0" },
//!     { "src": 1, "dst": 2, "at": "5/2" }
//!   ]
//! }
//! ```
//!
//! Times and λ accept the same forms the CLI does: `"5/2"`, `"2.5"`, or
//! a bare JSON number. `"messages"` is optional (default 1).

use postal_model::latency::Latency;
use postal_model::lint::Diagnostic;
use postal_model::ratio::Ratio;
use postal_model::schedule::{Schedule, TimedSend};
use postal_model::time::Time;
use std::collections::BTreeMap;
use std::fmt;

/// A schedule as read from a file, with its optional message count.
#[derive(Debug, Clone)]
pub struct ScheduleFile {
    /// The schedule.
    pub schedule: Schedule,
    /// `"messages"` field, when present.
    pub messages: Option<u64>,
    /// Events the recorder dropped before this schedule was derived
    /// (JSONL logs only; schedule files are always complete). A nonzero
    /// value marks the schedule as a *partial* reconstruction.
    pub dropped_events: Option<u64>,
    /// The sampling spec that produced the source log, when sampled.
    pub sample: Option<String>,
    /// Whether the source log carries a `truncated` event — the engine
    /// hit its event budget and aborted, so the trace stops mid-run
    /// (JSONL logs only; schedule files are always complete).
    pub truncated: bool,
    /// `"topology"` field, when present: a `TopologySpec` string
    /// (`complete`, `ring`, `torus:RxC`, `hypercube:D`, `mbg:N`) naming
    /// the communication graph the schedule targets. `postal-cli lint`
    /// uses it as the default when `--topology` is not given.
    pub topology: Option<String>,
}

impl ScheduleFile {
    /// True when the source trace is known to be incomplete — findings
    /// about absences (causality, coverage) are unreliable then. Both
    /// recorder sampling (`dropped_events > 0`) and an engine event-
    /// budget abort (`truncated`) make a trace partial.
    pub fn is_partial(&self) -> bool {
        self.dropped_events.is_some_and(|d| d > 0) || self.truncated
    }
}

/// A JSON syntax or shape error, with a byte offset when syntactic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}

/// Parsed JSON value. Numbers keep their literal text so that times can
/// be re-parsed exactly as rationals (e.g. `2.5` → `5/2`, no binary
/// float round-trip).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> JsonError {
        JsonError(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        Ok(Value::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn parse_value(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

fn as_ratio(v: &Value, field: &str) -> Result<Ratio, JsonError> {
    let text = match v {
        Value::Num(t) => t.as_str(),
        Value::Str(s) => s.as_str(),
        _ => return Err(JsonError(format!("\"{field}\" must be a number or string"))),
    };
    text.parse::<Ratio>()
        .map_err(|_| JsonError(format!("\"{field}\": cannot parse {text:?} as a rational")))
}

fn as_u64(v: &Value, field: &str) -> Result<u64, JsonError> {
    if let Value::Num(t) = v {
        if let Ok(x) = t.parse::<u64>() {
            return Ok(x);
        }
    }
    Err(JsonError(format!(
        "\"{field}\" must be a nonnegative integer"
    )))
}

/// Parses a schedule file (see module docs for the format).
pub fn parse_schedule(text: &str) -> Result<ScheduleFile, JsonError> {
    let Value::Obj(top) = parse_value(text)? else {
        return Err(JsonError("top level must be an object".into()));
    };
    let n = top
        .get("n")
        .ok_or_else(|| JsonError("missing \"n\"".into()))
        .and_then(|v| as_u64(v, "n"))?;
    if n == 0 || n > u32::MAX as u64 {
        return Err(JsonError(format!("\"n\" out of range: {n}")));
    }
    let lam_ratio = top
        .get("lambda")
        .ok_or_else(|| JsonError("missing \"lambda\"".into()))
        .and_then(|v| as_ratio(v, "lambda"))?;
    let latency =
        Latency::new(lam_ratio).map_err(|e| JsonError(format!("invalid \"lambda\": {e}")))?;
    let messages = match top.get("messages") {
        None => None,
        Some(v) => Some(as_u64(v, "messages")?),
    };
    let topology = match top.get("topology") {
        None => None,
        Some(Value::Str(s)) => Some(s.clone()),
        Some(_) => return Err(JsonError("\"topology\" must be a string".into())),
    };
    let Some(Value::Arr(raw_sends)) = top.get("sends") else {
        return Err(JsonError("missing \"sends\" array".into()));
    };
    let mut sends = Vec::with_capacity(raw_sends.len());
    for (i, item) in raw_sends.iter().enumerate() {
        let Value::Obj(o) = item else {
            return Err(JsonError(format!("sends[{i}] must be an object")));
        };
        let src = o
            .get("src")
            .ok_or_else(|| JsonError(format!("sends[{i}]: missing \"src\"")))
            .and_then(|v| as_u64(v, "src"))?;
        let dst = o
            .get("dst")
            .ok_or_else(|| JsonError(format!("sends[{i}]: missing \"dst\"")))
            .and_then(|v| as_u64(v, "dst"))?;
        let at = o
            .get("at")
            .ok_or_else(|| JsonError(format!("sends[{i}]: missing \"at\"")))
            .and_then(|v| as_ratio(v, "at"))?;
        if src > u32::MAX as u64 || dst > u32::MAX as u64 {
            return Err(JsonError(format!("sends[{i}]: endpoint out of range")));
        }
        sends.push(TimedSend {
            src: src as u32,
            dst: dst as u32,
            send_start: Time(at),
        });
    }
    Ok(ScheduleFile {
        schedule: Schedule::new(n as u32, latency, sends),
        messages,
        dropped_events: None,
        sample: None,
        truncated: false,
        topology,
    })
}

/// A scalar field value captured during a streaming parse. Numbers and
/// strings keep their literal text (exact-rational re-parse); anything
/// else is recorded only by shape so the deferred validation can emit
/// the same "must be a …" message the tree parser would.
enum Scalar {
    Num(String),
    Str(String),
    Other,
}

impl Scalar {
    fn as_u64(&self, field: &str) -> Result<u64, JsonError> {
        if let Scalar::Num(t) = self {
            if let Ok(x) = t.parse::<u64>() {
                return Ok(x);
            }
        }
        Err(JsonError(format!(
            "\"{field}\" must be a nonnegative integer"
        )))
    }

    fn as_ratio(&self, field: &str) -> Result<Ratio, JsonError> {
        let text = match self {
            Scalar::Num(t) => t.as_str(),
            Scalar::Str(s) => s.as_str(),
            Scalar::Other => {
                return Err(JsonError(format!("\"{field}\" must be a number or string")))
            }
        };
        text.parse::<Ratio>()
            .map_err(|_| JsonError(format!("\"{field}\": cannot parse {text:?} as a rational")))
    }
}

/// Incremental JSON lexer over a [`BufRead`]: the streaming counterpart
/// of the tree-building `Parser`, reading one buffered byte at a time
/// and tracking the absolute offset for `at byte N` errors.
struct StreamParser<R: std::io::BufRead> {
    inner: R,
    pos: usize,
}

impl<R: std::io::BufRead> StreamParser<R> {
    fn new(inner: R) -> StreamParser<R> {
        StreamParser { inner, pos: 0 }
    }

    fn err(&self, what: &str) -> JsonError {
        JsonError(format!("{what} at byte {}", self.pos))
    }

    fn peek(&mut self) -> Result<Option<u8>, JsonError> {
        let buf = self
            .inner
            .fill_buf()
            .map_err(|e| JsonError(format!("read error at byte {}: {e}", self.pos)))?;
        Ok(buf.first().copied())
    }

    fn bump(&mut self) {
        self.inner.consume(1);
        self.pos += 1;
    }

    fn skip_ws(&mut self) -> Result<(), JsonError> {
        while let Some(b) = self.peek()? {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.bump();
            } else {
                break;
            }
        }
        Ok(())
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek()? == Some(b) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), JsonError> {
        for &w in word.as_bytes() {
            if self.peek()? != Some(w) {
                return Err(self.err(&format!("expected '{word}'")));
            }
            self.bump();
        }
        Ok(())
    }

    fn number(&mut self) -> Result<String, JsonError> {
        let mut text = String::new();
        while let Some(b) = self.peek()? {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                text.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        Ok(text)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut utf8: Vec<u8> = Vec::new();
        loop {
            let Some(b) = self.peek()? else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' if utf8.is_empty() => {
                    self.bump();
                    return Ok(out);
                }
                b'\\' if utf8.is_empty() => {
                    self.bump();
                    let esc = self.peek()?.ok_or_else(|| self.err("bad escape"))?;
                    self.bump();
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let mut hex = String::new();
                            for _ in 0..4 {
                                let h = self.peek()?.ok_or_else(|| self.err("bad \\u escape"))?;
                                hex.push(h as char);
                                self.bump();
                            }
                            let cp = u32::from_str_radix(&hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Accumulate multi-byte UTF-8 sequences byte-wise.
                    utf8.push(b);
                    self.bump();
                    match std::str::from_utf8(&utf8) {
                        Ok(s) => {
                            out.push_str(s);
                            utf8.clear();
                        }
                        Err(_) if utf8.len() < 4 => {}
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    }
                }
            }
        }
    }

    /// Consumes one scalar JSON value; nested arrays/objects are
    /// swallowed recursively and reported as [`Scalar::Other`].
    fn scalar(&mut self) -> Result<Scalar, JsonError> {
        self.skip_ws()?;
        match self.peek()? {
            Some(b'"') => Ok(Scalar::Str(self.string()?)),
            Some(b't') => self.literal("true").map(|()| Scalar::Other),
            Some(b'f') => self.literal("false").map(|()| Scalar::Other),
            Some(b'n') => self.literal("null").map(|()| Scalar::Other),
            Some(b) if b == b'-' || b.is_ascii_digit() => Ok(Scalar::Num(self.number()?)),
            Some(b'{') | Some(b'[') => {
                self.skip_value()?;
                Ok(Scalar::Other)
            }
            _ => Err(self.err("expected a JSON value")),
        }
    }

    /// Validates and discards one JSON value of any shape — how unknown
    /// keys are tolerated without materializing their contents.
    fn skip_value(&mut self) -> Result<(), JsonError> {
        self.skip_ws()?;
        match self.peek()? {
            Some(b'{') => {
                self.bump();
                self.skip_ws()?;
                if self.peek()? == Some(b'}') {
                    self.bump();
                    return Ok(());
                }
                loop {
                    self.skip_ws()?;
                    self.string()?;
                    self.skip_ws()?;
                    self.expect(b':')?;
                    self.skip_value()?;
                    self.skip_ws()?;
                    match self.peek()? {
                        Some(b',') => self.bump(),
                        Some(b'}') => {
                            self.bump();
                            return Ok(());
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'[') => {
                self.bump();
                self.skip_ws()?;
                if self.peek()? == Some(b']') {
                    self.bump();
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    self.skip_ws()?;
                    match self.peek()? {
                        Some(b',') => self.bump(),
                        Some(b']') => {
                            self.bump();
                            return Ok(());
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            _ => self.scalar().map(|_| ()),
        }
    }

    /// One element of the `"sends"` array: a flat object with `src`,
    /// `dst` and `at` (unknown keys skipped, duplicates last-wins).
    fn send_element(&mut self, i: usize) -> Result<TimedSend, JsonError> {
        self.skip_ws()?;
        if self.peek()? != Some(b'{') {
            self.skip_value()?;
            return Err(JsonError(format!("sends[{i}] must be an object")));
        }
        self.bump();
        let (mut src, mut dst, mut at) = (None, None, None);
        self.skip_ws()?;
        if self.peek()? == Some(b'}') {
            self.bump();
        } else {
            loop {
                self.skip_ws()?;
                let key = self.string()?;
                self.skip_ws()?;
                self.expect(b':')?;
                match key.as_str() {
                    "src" => src = Some(self.scalar()?),
                    "dst" => dst = Some(self.scalar()?),
                    "at" => at = Some(self.scalar()?),
                    _ => self.skip_value()?,
                }
                self.skip_ws()?;
                match self.peek()? {
                    Some(b',') => self.bump(),
                    Some(b'}') => {
                        self.bump();
                        break;
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
        let src = src
            .ok_or_else(|| JsonError(format!("sends[{i}]: missing \"src\"")))
            .and_then(|v| v.as_u64("src"))?;
        let dst = dst
            .ok_or_else(|| JsonError(format!("sends[{i}]: missing \"dst\"")))
            .and_then(|v| v.as_u64("dst"))?;
        let at = at
            .ok_or_else(|| JsonError(format!("sends[{i}]: missing \"at\"")))
            .and_then(|v| v.as_ratio("at"))?;
        if src > u32::MAX as u64 || dst > u32::MAX as u64 {
            return Err(JsonError(format!("sends[{i}]: endpoint out of range")));
        }
        Ok(TimedSend {
            src: src as u32,
            dst: dst as u32,
            send_start: Time(at),
        })
    }
}

/// Streaming counterpart of [`parse_schedule`]: reads the same format
/// incrementally from `reader`, so a million-send schedule file is
/// linted without ever materializing its text (or a parse tree) in
/// memory. Only the `TimedSend` list itself is retained. Top-level and
/// per-send unknown keys are skipped; duplicate keys are last-wins;
/// fields may appear in any order.
///
/// # Errors
/// [`JsonError`] on syntax errors, I/O failures, or shape violations,
/// in the formats [`parse_schedule`] uses.
pub fn parse_schedule_reader<R: std::io::BufRead>(reader: R) -> Result<ScheduleFile, JsonError> {
    let mut p = StreamParser::new(reader);
    p.skip_ws()?;
    if p.peek()? != Some(b'{') {
        // Validate the stray value for a precise syntax error, then
        // report the shape problem the tree parser would.
        p.skip_value()?;
        return Err(JsonError("top level must be an object".into()));
    }
    p.bump();

    let (mut n, mut lambda, mut messages): (Option<Scalar>, Option<Scalar>, Option<Scalar>) =
        (None, None, None);
    let mut topology: Option<Scalar> = None;
    let mut sends: Option<Vec<TimedSend>> = None;
    p.skip_ws()?;
    if p.peek()? == Some(b'}') {
        p.bump();
    } else {
        loop {
            p.skip_ws()?;
            let key = p.string()?;
            p.skip_ws()?;
            p.expect(b':')?;
            match key.as_str() {
                "n" => n = Some(p.scalar()?),
                "lambda" => lambda = Some(p.scalar()?),
                "messages" => messages = Some(p.scalar()?),
                "topology" => topology = Some(p.scalar()?),
                "sends" => {
                    p.skip_ws()?;
                    if p.peek()? == Some(b'[') {
                        p.bump();
                        let mut list = Vec::new();
                        p.skip_ws()?;
                        if p.peek()? == Some(b']') {
                            p.bump();
                        } else {
                            loop {
                                list.push(p.send_element(list.len())?);
                                p.skip_ws()?;
                                match p.peek()? {
                                    Some(b',') => p.bump(),
                                    Some(b']') => {
                                        p.bump();
                                        break;
                                    }
                                    _ => return Err(p.err("expected ',' or ']'")),
                                }
                            }
                        }
                        sends = Some(list);
                    } else {
                        // A non-array "sends" reads as absent, exactly
                        // as the tree parser's shape check treats it.
                        p.skip_value()?;
                        sends = None;
                    }
                }
                _ => p.skip_value()?,
            }
            p.skip_ws()?;
            match p.peek()? {
                Some(b',') => p.bump(),
                Some(b'}') => {
                    p.bump();
                    break;
                }
                _ => return Err(p.err("expected ',' or '}'")),
            }
        }
    }
    p.skip_ws()?;
    if p.peek()?.is_some() {
        return Err(p.err("trailing characters after JSON value"));
    }

    let n = n
        .ok_or_else(|| JsonError("missing \"n\"".into()))
        .and_then(|v| v.as_u64("n"))?;
    if n == 0 || n > u32::MAX as u64 {
        return Err(JsonError(format!("\"n\" out of range: {n}")));
    }
    let lam_ratio = lambda
        .ok_or_else(|| JsonError("missing \"lambda\"".into()))
        .and_then(|v| v.as_ratio("lambda"))?;
    let latency =
        Latency::new(lam_ratio).map_err(|e| JsonError(format!("invalid \"lambda\": {e}")))?;
    let messages = match messages {
        None => None,
        Some(v) => Some(v.as_u64("messages")?),
    };
    let topology = match topology {
        None => None,
        Some(Scalar::Str(s)) => Some(s),
        Some(_) => return Err(JsonError("\"topology\" must be a string".into())),
    };
    let Some(sends) = sends else {
        return Err(JsonError("missing \"sends\" array".into()));
    };
    Ok(ScheduleFile {
        schedule: Schedule::new(n as u32, latency, sends),
        messages,
        dropped_events: None,
        sample: None,
        truncated: false,
        topology,
    })
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a schedule in the format [`parse_schedule`] reads.
pub fn schedule_to_json(schedule: &Schedule, messages: Option<u64>) -> String {
    schedule_to_json_with_topology(schedule, messages, None)
}

/// Like [`schedule_to_json`], but also records an optional `"topology"`
/// field (a [`TopologySpec`](postal_model::TopologySpec) string such as
/// `"ring"` or `"torus:4x6"`) so that `postal-cli lint` can pick the
/// communication graph up from the file itself.
pub fn schedule_to_json_with_topology(
    schedule: &Schedule,
    messages: Option<u64>,
    topology: Option<&str>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"n\": {},\n  \"lambda\": \"{}\",\n",
        schedule.n(),
        schedule.latency()
    ));
    if let Some(m) = messages {
        out.push_str(&format!("  \"messages\": {m},\n"));
    }
    if let Some(t) = topology {
        out.push_str(&format!("  \"topology\": \"{}\",\n", esc(t)));
    }
    out.push_str("  \"sends\": [\n");
    let body: Vec<String> = schedule
        .sends()
        .iter()
        .map(|s| {
            format!(
                "    {{ \"src\": {}, \"dst\": {}, \"at\": \"{}\" }}",
                s.src, s.dst, s.send_start
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Serializes diagnostics as a JSON array (for `postal lint --format json`).
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    let body: Vec<String> = diags
        .iter()
        .map(|d| {
            let sends: Vec<String> = d
                .sends
                .iter()
                .map(|s| {
                    format!(
                        "{{ \"src\": {}, \"dst\": {}, \"at\": \"{}\" }}",
                        s.src, s.dst, s.send_start
                    )
                })
                .collect();
            let proc = match d.proc {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            let related = match d.related_time {
                Some(t) => format!("\"{t}\""),
                None => "null".to_string(),
            };
            let witness = match d.witness {
                Some(w) => format!("[\"{}\", \"{}\"]", w.lo(), w.hi()),
                None => "null".to_string(),
            };
            format!(
                "  {{ \"code\": \"{}\", \"severity\": \"{}\", \"proc\": {proc}, \
                 \"message\": \"{}\", \"related_time\": {related}, \
                 \"lambda_witness\": {witness}, \"sends\": [{}] }}",
                d.code,
                d.severity,
                esc(&d.message),
                sends.join(", ")
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use postal_model::lint::{lint_schedule, LintOptions};

    const SAMPLE: &str = r#"{
      "n": 3,
      "lambda": "5/2",
      "sends": [
        { "src": 0, "dst": 1, "at": "0" },
        { "src": 1, "dst": 2, "at": "5/2" }
      ]
    }"#;

    #[test]
    fn parses_the_documented_format() {
        let file = parse_schedule(SAMPLE).unwrap();
        assert_eq!(file.schedule.n(), 3);
        assert_eq!(file.schedule.latency(), Latency::from_ratio(5, 2));
        assert_eq!(file.schedule.len(), 2);
        assert_eq!(file.messages, None);
        assert_eq!(file.schedule.sends()[1].send_start, Time::new(5, 2));
    }

    #[test]
    fn accepts_decimal_and_bare_number_times() {
        let file =
            parse_schedule(r#"{"n": 2, "lambda": 2.5, "sends": [{"src":0,"dst":1,"at":1.5}]}"#)
                .unwrap();
        assert_eq!(file.schedule.latency(), Latency::from_ratio(5, 2));
        assert_eq!(file.schedule.sends()[0].send_start, Time::new(3, 2));
    }

    #[test]
    fn round_trips_through_emitter() {
        let file = parse_schedule(SAMPLE).unwrap();
        let text = schedule_to_json(&file.schedule, Some(2));
        let again = parse_schedule(&text).unwrap();
        assert_eq!(again.schedule.sends(), file.schedule.sends());
        assert_eq!(again.messages, Some(2));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_schedule("[1, 2]").is_err());
        assert!(parse_schedule("{\"n\": 2}").is_err());
        assert!(parse_schedule("{\"n\": 0, \"lambda\": 1, \"sends\": []}").is_err());
        assert!(
            parse_schedule(r#"{"n": 2, "lambda": "1/2", "sends": []}"#).is_err(),
            "lambda < 1 must be rejected"
        );
        assert!(parse_schedule("{\"n\": 2, \"lambda\": 1, \"sends\": [{}]}").is_err());
        assert!(parse_schedule("{\"n\": 2, \"lambda\": 1, \"sends\": []} trailing").is_err());
    }

    #[test]
    fn streaming_parser_matches_tree_parser() {
        let cases = [
            SAMPLE,
            r#"{"n": 2, "lambda": 2.5, "sends": [{"src":0,"dst":1,"at":1.5}]}"#,
            // Out-of-order fields, unknown keys (nested), duplicates.
            r#"{"comment": {"a": [1, {"b": null}]}, "sends": [
                 {"src": 0, "dst": 1, "at": "0", "note": "x"}],
               "lambda": "5/2", "n": 4, "n": 3}"#,
            r#"{"n": 2, "lambda": 1, "sends": []}"#,
        ];
        for text in cases {
            let tree = parse_schedule(text).unwrap();
            let stream = parse_schedule_reader(std::io::Cursor::new(text)).unwrap();
            assert_eq!(stream.schedule.n(), tree.schedule.n(), "{text}");
            assert_eq!(stream.schedule.latency(), tree.schedule.latency());
            assert_eq!(stream.schedule.sends(), tree.schedule.sends());
            assert_eq!(stream.messages, tree.messages);
        }
    }

    #[test]
    fn streaming_parser_rejects_what_the_tree_parser_rejects() {
        let bad = [
            "[1, 2]",
            "{\"n\": 2}",
            "{\"n\": 0, \"lambda\": 1, \"sends\": []}",
            r#"{"n": 2, "lambda": "1/2", "sends": []}"#,
            "{\"n\": 2, \"lambda\": 1, \"sends\": [{}]}",
            "{\"n\": 2, \"lambda\": 1, \"sends\": []} trailing",
            "{\"n\": 2, \"lambda\": 1, \"sends\": 3}",
            "not json",
        ];
        for text in bad {
            assert!(parse_schedule(text).is_err(), "{text}");
            assert!(
                parse_schedule_reader(std::io::Cursor::new(text)).is_err(),
                "{text}"
            );
        }
        // Shape errors carry the tree parser's exact wording.
        let missing = parse_schedule_reader(std::io::Cursor::new(
            "{\"n\": 2, \"lambda\": 1, \"sends\": 3}",
        ))
        .unwrap_err();
        assert_eq!(missing.0, "missing \"sends\" array");
        let el = parse_schedule_reader(std::io::Cursor::new(
            "{\"n\": 2, \"lambda\": 1, \"sends\": [{\"dst\": 1, \"at\": 0}]}",
        ))
        .unwrap_err();
        assert_eq!(el.0, "sends[0]: missing \"src\"");
    }

    #[test]
    fn diagnostics_serialize_with_code_and_sends() {
        let file = parse_schedule(
            r#"{"n": 3, "lambda": "5/2",
                "sends": [{"src":0,"dst":1,"at":"0"}, {"src":0,"dst":2,"at":"1/2"}]}"#,
        )
        .unwrap();
        let diags = lint_schedule(&file.schedule, &LintOptions::ports_only());
        let json = diagnostics_to_json(&diags);
        assert!(json.contains("\"code\": \"P0001\""), "{json}");
        assert!(json.contains("\"at\": \"1/2\""), "{json}");
    }
}
