//! Differential suite for the epoch-based race detector.
//!
//! `detect_races` (FastTrack-style epochs, sparse clocks) must report
//! exactly the same races — same pairs, same order, same message
//! bytes — as `detect_races_reference` (full vector clocks), on both
//! structured traffic and adversarial random flight sets.

use postal_verify::race::{detect_races, detect_races_reference, RaceStream};
use postal_verify::{Flight, Race};
use proptest::prelude::*;

fn fl(src: u32, dst: u32, send_at: f64, recv_at: f64, label: &str) -> Flight {
    Flight {
        src,
        dst,
        send_at,
        recv_at,
        label: label.to_string(),
    }
}

/// Feeds the streaming detector in send order; returns `None` when the
/// input violates its ordering contract (the flag is its honest "use
/// batch mode" answer, so there is nothing to compare).
fn stream_races(n: u32, flights: &[Flight]) -> Option<Vec<Race>> {
    let mut sorted = flights.to_vec();
    sorted.sort_by(|a, b| a.send_at.total_cmp(&b.send_at));
    let mut stream = RaceStream::new(n);
    for f in sorted {
        stream.push(f);
    }
    (!stream.out_of_order()).then(|| stream.finish())
}

fn assert_identical(n: u32, flights: &[Flight], context: &str) {
    let fast = detect_races(n, flights);
    let slow = detect_races_reference(n, flights);
    assert_eq!(fast, slow, "detectors diverge: {context}");
    if let Some(streamed) = stream_races(n, flights) {
        assert_eq!(streamed, fast, "streaming detector diverges: {context}");
    }
}

#[test]
fn edge_cases_agree() {
    let cases: Vec<(&str, u32, Vec<Flight>)> = vec![
        ("empty", 4, vec![]),
        (
            "broadcast tree",
            3,
            vec![fl(0, 1, 0.0, 2.5, "a"), fl(0, 2, 1.0, 3.5, "b")],
        ),
        (
            "fifo pipeline",
            2,
            vec![
                fl(0, 1, 0.0, 2.5, "m0"),
                fl(0, 1, 1.0, 3.5, "m1"),
                fl(0, 1, 2.0, 4.5, "m2"),
            ],
        ),
        (
            "independent senders",
            4,
            vec![fl(1, 3, 0.0, 1.0, "a"), fl(2, 3, 0.5, 1.5, "b")],
        ),
        (
            "causally forced relay",
            3,
            vec![
                fl(0, 2, 0.0, 1.0, "a"),
                fl(2, 1, 1.0, 2.0, "b"),
                fl(1, 2, 2.0, 3.0, "c"),
            ],
        ),
        (
            "simultaneous deliveries",
            3,
            vec![fl(0, 2, 0.0, 1.0, "a"), fl(1, 2, 0.0, 1.0, "b")],
        ),
        (
            "same channel, wrong order",
            2,
            vec![fl(0, 1, 1.0, 2.0, "late"), fl(0, 1, 0.0, 2.5, "early")],
        ),
        (
            "recv before send (malformed)",
            2,
            vec![fl(0, 1, 5.0, 1.0, "warp"), fl(0, 1, 0.0, 2.0, "ok")],
        ),
        (
            "zero-latency self-forwarding chain",
            4,
            vec![
                fl(0, 1, 0.0, 1.0, "a"),
                fl(1, 2, 1.0, 2.0, "b"),
                fl(2, 3, 2.0, 3.0, "c"),
                fl(0, 3, 2.5, 3.5, "d"),
            ],
        ),
    ];
    for (name, n, flights) in cases {
        assert_identical(n, &flights, name);
    }
}

#[test]
fn dense_spill_agrees_with_reference() {
    // More than SPARSE_LIMIT (64) distinct senders into one hub, then
    // the hub fans back out: the hub's clock spills to dense and its
    // snapshots propagate dense clocks through later joins.
    let n = 80u32;
    let mut flights: Vec<Flight> = (1..n)
        .map(|p| fl(p, 0, p as f64, p as f64 + 2.0, "in"))
        .collect();
    for p in 1..n {
        flights.push(fl(0, p, 100.0 + p as f64, 102.0 + p as f64, "out"));
    }
    assert_identical(n, &flights, "hub spill");
}

/// Random flight sets over a small processor pool, with times drawn
/// from a small grid so simultaneity and equal-instant forwarding
/// actually occur.
fn arb_flights() -> impl Strategy<Value = (u32, Vec<Flight>)> {
    (
        2u32..=6,
        collection::vec((0u32..6, 0u32..6, 0u32..12, 1u32..6), 0..14),
    )
        .prop_map(|(n, raw)| {
            let flights = raw
                .into_iter()
                .enumerate()
                .map(|(i, (src, dst, at, latency))| Flight {
                    src: src % n,
                    dst: dst % n,
                    send_at: at as f64 / 2.0,
                    recv_at: (at + latency) as f64 / 2.0,
                    label: format!("f{i}"),
                })
                .collect();
            (n, flights)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_flight_sets_agree(case in arb_flights()) {
        let (n, flights) = case;
        let fast = detect_races(n, &flights);
        let slow = detect_races_reference(n, &flights);
        prop_assert_eq!(&fast, &slow);
        // The generator always gives latency ≥ 1, so the streaming
        // detector's ordering contract holds and it must agree too.
        let streamed = stream_races(n, &flights).expect("send-sorted feed is in order");
        prop_assert_eq!(streamed, fast);
    }
}
