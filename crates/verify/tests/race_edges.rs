//! Edge cases for the happens-before race detector: simultaneous
//! rational timestamps, the λ = 1 telephone chain (causal forcing
//! through equal-instant relay), and two-processor ping-pong under
//! latency jitter.

use postal_verify::{detect_races, Flight};

fn fl(src: u32, dst: u32, send_at: f64, recv_at: f64, label: &str) -> Flight {
    Flight {
        src,
        dst,
        send_at,
        recv_at,
        label: label.to_string(),
    }
}

#[test]
fn simultaneous_rational_timestamps_race_even_when_causally_related() {
    // Both deliveries complete at exactly t = 7/2, written as different
    // float expressions that must compare equal. Simultaneity wins over
    // any other forcing: the tie cannot be resolved by the model.
    let t = 7.0 / 2.0;
    let flights = vec![
        fl(0, 2, 1.0, t, "a"),
        fl(1, 2, 1.5, 3.5, "b"), // same instant, different channel
    ];
    let races = detect_races(3, &flights);
    assert_eq!(races.len(), 1);
    assert_eq!(races[0].dst, 2);
    assert!(races[0].message.contains("simultaneously"), "{}", races[0]);

    // Even same-channel (FIFO) sends are racy if the trace shows both
    // receives completing in the same instant.
    let fifo = vec![fl(0, 1, 0.0, 2.5, "m0"), fl(0, 1, 1.0, 2.5, "m1")];
    let races = detect_races(2, &fifo);
    assert_eq!(races.len(), 1);
    assert!(races[0].message.contains("simultaneously"), "{}", races[0]);
}

#[test]
fn lambda_one_telephone_chain_is_causally_forced() {
    // λ = 1 telephone: p0 → p1 → p2 → p1, each hop relayed the instant
    // the previous receive completes. p1's two deliveries ("a" from p0,
    // "c" from p2) use different channels, so FIFO cannot force them —
    // only the happens-before chain through the relay does.
    let flights = vec![
        fl(0, 1, 0.0, 1.0, "a"), // p1 learns at t = 1
        fl(1, 2, 1.0, 2.0, "b"), // relayed the instant the receive ends
        fl(2, 1, 2.0, 3.0, "c"), // p2's send happens-after p1's receipt of "a"
    ];
    assert!(
        detect_races(3, &flights).is_empty(),
        "the λ = 1 relay chain is forced: {:?}",
        detect_races(3, &flights)
    );
}

#[test]
fn lambda_one_chain_with_equal_instant_relay_still_forces() {
    // The relay send shares its timestamp with the receive that
    // justifies it (legal in the postal model: the output port is free).
    // The detector must order receives before sends at equal instants,
    // or the causal edge is lost and this flags a phantom race.
    let flights = vec![
        fl(0, 1, 0.0, 1.0, "a"),
        fl(1, 0, 1.0, 2.0, "b"), // sent at exactly t = 1, p1's receive instant
        fl(0, 1, 2.0, 3.0, "c"), // sent at exactly t = 2, p0's receive instant
    ];
    assert!(detect_races(2, &flights).is_empty());
}

#[test]
fn ping_pong_with_jitter_is_forced_by_causality() {
    // Two processors bounce a ball; wall-clock latencies jitter around
    // λ = 1 (0.97–1.06). Every send strictly follows the previous
    // receipt, so no adjacent delivery pair is reorderable — jitter
    // alone must not produce races.
    let flights = vec![
        fl(0, 1, 0.0, 1.03, "ping0"),
        fl(1, 0, 1.10, 2.07, "pong0"),
        fl(0, 1, 2.12, 3.18, "ping1"),
        fl(1, 0, 3.20, 4.17, "pong1"),
        fl(0, 1, 4.25, 5.22, "ping2"),
    ];
    assert!(detect_races(2, &flights).is_empty());
}

#[test]
fn jitter_that_overtakes_a_channel_is_a_race() {
    // Same ping-pong, but p0 double-fires without waiting and jitter
    // makes the second ball land first: the observed order at p1 is not
    // forced by FIFO (order inverted) nor causality.
    let flights = vec![
        fl(0, 1, 0.0, 1.08, "slow"),
        fl(0, 1, 0.5, 1.02, "fast"), // overtakes on the same channel
    ];
    let races = detect_races(2, &flights);
    assert_eq!(races.len(), 1);
    assert_eq!(races[0].first.label, "fast");
    assert_eq!(races[0].second.label, "slow");
}

#[test]
fn third_party_interjection_during_ping_pong_races() {
    // A healthy ping-pong with a bystander p2 firing into p1's input
    // mid-rally: p2's send is not ordered against the rally, so exactly
    // the adjacent pair involving it races.
    let flights = vec![
        fl(0, 1, 0.0, 1.0, "ping0"),
        fl(1, 0, 1.0, 2.0, "pong0"),
        fl(2, 1, 1.6, 2.6, "interject"), // unordered vs the rally
        fl(0, 1, 2.0, 3.0, "ping1"),
    ];
    let races = detect_races(3, &flights);
    // "ping0" < "interject" is unforced (p2 heard nothing), and
    // "interject" < "ping1" is likewise unforced.
    assert_eq!(races.len(), 2);
    assert!(races.iter().all(|r| r.dst == 1));
    assert!(races
        .iter()
        .any(|r| r.first.label == "ping0" && r.second.label == "interject"));
    assert!(races
        .iter()
        .any(|r| r.first.label == "interject" && r.second.label == "ping1"));
}
