//! Golden tests for the rustc-style renderer: one lint from each code
//! band is pinned to its exact byte-for-byte output — spans, code,
//! evidence lines, witness λ-interval, wrapped rule text, and summary.
//!
//! * `P0001` (concrete schedule band, produced by `lint_schedule`);
//! * `P0008` (model-checking band; hand-built literal, since `verify`
//!   sits below `mc` in the dependency order);
//! * `P0012` (abstract-interpretation band; likewise hand-built).
//!
//! If one of these fails after an intentional renderer change, update
//! the expected string — the point is that such changes are loud.

use postal_model::lint::{lint_schedule, Diagnostic, LintCode, LintOptions, Severity};
use postal_model::schedule::{Schedule, TimedSend};
use postal_model::{Interval, Latency, Ratio, Time};
use postal_verify::render::render_report;

#[test]
fn p0001_band_schedule_lint_renders_exactly() {
    // p0 starts two sends 1/2 unit apart: an output-port overlap.
    let s = Schedule::new(
        3,
        Latency::from_ratio(5, 2),
        vec![
            TimedSend {
                src: 0,
                dst: 1,
                send_start: Time::ZERO,
            },
            TimedSend {
                src: 0,
                dst: 2,
                send_start: Time::new(1, 2),
            },
        ],
    );
    let diags = lint_schedule(&s, &LintOptions::ports_only());
    let text = render_report(&diags, "golden.json");
    let expected = "\
error[P0001]: p0 starts sends at t = 0 and t = 1/2 (1/2 < 1 unit apart)
  --> golden.json: p0
   = send: p0 -> p1 at t = 0
   = send: p0 -> p2 at t = 1/2
   = rule: a processor \"can send a new message to a new processor every unit of
     time\", never faster: consecutive send starts at one output port must be
     >= 1 unit apart (model definition, Section 2)

golden.json: 1 error
";
    assert_eq!(text, expected);
}

#[test]
fn p0008_band_model_check_diagnostic_renders_exactly() {
    let d = Diagnostic {
        code: LintCode::Deadlock,
        severity: Severity::Error,
        proc: Some(3),
        sends: vec![],
        related_time: Some(Time::new(7, 2)),
        witness: None,
        message: "2 of 5 explored executions deadlock: p3 still has a pending \
                  event at t = 7/2 that can never fire"
            .into(),
    };
    let text = render_report(&[d], "bcast");
    let expected = "\
error[P0008]: 2 of 5 explored executions deadlock: p3 still has a pending event at t = 7/2 that can never fire
  --> bcast: p3
   = at: t = 7/2
   = rule: an event-driven algorithm acts when it starts and whenever a message
     arrives; every admissible execution of MPS(n, lambda) must reach
     quiescence with no message still in flight (model definition, Section 2)

bcast: 1 error
";
    assert_eq!(text, expected);
}

#[test]
fn p0012_band_abstract_diagnostic_renders_exactly_with_witness() {
    let d = Diagnostic {
        code: LintCode::DeadSend,
        severity: Severity::Error,
        proc: Some(4),
        sends: vec![TimedSend {
            src: 4,
            dst: 5,
            send_start: Time::from_int(2),
        }],
        related_time: None,
        witness: Some(Interval::new(Ratio::ONE, Ratio::new(5, 2))),
        message: "p4 sends to p5 at t = 2 but the message is never received \
                  (1 dead send in total)"
            .into(),
    };
    let text = render_report(&[d], "bcast");
    let expected = "\
error[P0012]: p4 sends to p5 at t = 2 but the message is never received (1 dead send in total)
  --> bcast: p4
   = send: p4 -> p5 at t = 2
   = witness: lambda in [1, 5/2]
   = rule: a message sent through an output port is fully received lambda units
     later; a send whose receiver provably never reads it does useless work
     for every lambda in the range (model definition, Section 2)

bcast: 1 error
";
    assert_eq!(text, expected);
}
