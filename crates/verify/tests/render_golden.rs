//! Golden tests for the rustc-style renderer: one lint from each code
//! band is pinned to its exact byte-for-byte output — spans, code,
//! evidence lines, witness λ-interval, wrapped rule text, and summary.
//!
//! * `P0001` (concrete schedule band, produced by `lint_schedule`);
//! * `P0008` (model-checking band; hand-built literal, since `verify`
//!   sits below `mc` in the dependency order);
//! * `P0012` (abstract-interpretation band; likewise hand-built);
//! * `P0017`–`P0019` (topology band, produced by
//!   `lint_schedule_with_topology` against sparse graphs), plus the
//!   `"topology"` field of the schedule JSON codec.
//!
//! If one of these fails after an intentional renderer change, update
//! the expected string — the point is that such changes are loud.

use postal_model::lint::{lint_schedule, Diagnostic, LintCode, LintOptions, Severity};
use postal_model::schedule::{Schedule, TimedSend};
use postal_model::{Interval, Latency, Ratio, Time, Topology, TopologySpec};
use postal_verify::json;
use postal_verify::lint_schedule_with_topology;
use postal_verify::render::render_report;

fn topo(spec: &str, n: u32) -> Topology {
    spec.parse::<TopologySpec>()
        .unwrap()
        .instantiate(n)
        .unwrap()
}

#[test]
fn p0001_band_schedule_lint_renders_exactly() {
    // p0 starts two sends 1/2 unit apart: an output-port overlap.
    let s = Schedule::new(
        3,
        Latency::from_ratio(5, 2),
        vec![
            TimedSend {
                src: 0,
                dst: 1,
                send_start: Time::ZERO,
            },
            TimedSend {
                src: 0,
                dst: 2,
                send_start: Time::new(1, 2),
            },
        ],
    );
    let diags = lint_schedule(&s, &LintOptions::ports_only());
    let text = render_report(&diags, "golden.json");
    let expected = "\
error[P0001]: p0 starts sends at t = 0 and t = 1/2 (1/2 < 1 unit apart)
  --> golden.json: p0
   = send: p0 -> p1 at t = 0
   = send: p0 -> p2 at t = 1/2
   = rule: a processor \"can send a new message to a new processor every unit of
     time\", never faster: consecutive send starts at one output port must be
     >= 1 unit apart (model definition, Section 2)

golden.json: 1 error
";
    assert_eq!(text, expected);
}

#[test]
fn p0008_band_model_check_diagnostic_renders_exactly() {
    let d = Diagnostic {
        code: LintCode::Deadlock,
        severity: Severity::Error,
        proc: Some(3),
        sends: vec![],
        related_time: Some(Time::new(7, 2)),
        witness: None,
        message: "2 of 5 explored executions deadlock: p3 still has a pending \
                  event at t = 7/2 that can never fire"
            .into(),
    };
    let text = render_report(&[d], "bcast");
    let expected = "\
error[P0008]: 2 of 5 explored executions deadlock: p3 still has a pending event at t = 7/2 that can never fire
  --> bcast: p3
   = at: t = 7/2
   = rule: an event-driven algorithm acts when it starts and whenever a message
     arrives; every admissible execution of MPS(n, lambda) must reach
     quiescence with no message still in flight (model definition, Section 2)

bcast: 1 error
";
    assert_eq!(text, expected);
}

#[test]
fn p0012_band_abstract_diagnostic_renders_exactly_with_witness() {
    let d = Diagnostic {
        code: LintCode::DeadSend,
        severity: Severity::Error,
        proc: Some(4),
        sends: vec![TimedSend {
            src: 4,
            dst: 5,
            send_start: Time::from_int(2),
        }],
        related_time: None,
        witness: Some(Interval::new(Ratio::ONE, Ratio::new(5, 2))),
        message: "p4 sends to p5 at t = 2 but the message is never received \
                  (1 dead send in total)"
            .into(),
    };
    let text = render_report(&[d], "bcast");
    let expected = "\
error[P0012]: p4 sends to p5 at t = 2 but the message is never received (1 dead send in total)
  --> bcast: p4
   = send: p4 -> p5 at t = 2
   = witness: lambda in [1, 5/2]
   = rule: a message sent through an output port is fully received lambda units
     later; a send whose receiver provably never reads it does useless work
     for every lambda in the range (model definition, Section 2)

bcast: 1 error
";
    assert_eq!(text, expected);
}

#[test]
fn p0017_band_non_edge_send_renders_exactly() {
    // 0 -> 2 is a chord of the 4-ring; ports-only keeps the graph pass
    // as the sole finding.
    let s = Schedule::new(
        4,
        Latency::from_int(2),
        vec![
            TimedSend {
                src: 0,
                dst: 1,
                send_start: Time::ZERO,
            },
            TimedSend {
                src: 0,
                dst: 2,
                send_start: Time::ONE,
            },
        ],
    );
    let diags = lint_schedule_with_topology(&s, &LintOptions::ports_only(), &topo("ring", 4));
    let text = render_report(&diags, "golden.json");
    let expected = "\
error[P0017]: p0 sends to p2 at t = 1, but p0-p2 is not an edge of the ring topology
  --> golden.json: p0
   = send: p0 -> p2 at t = 1
   = rule: in a sparse message-passing system a processor can send only to its
     neighbors in the communication graph; a transfer across a non-edge
     cannot happen on the target topology (sparse extension of the
     complete-graph MPS(n, lambda), Section 2; minimum-broadcast-graph
     constructions after arXiv:1312.1523)

golden.json: 1 error
";
    assert_eq!(text, expected);
}

#[test]
fn p0018_band_topology_gap_renders_exactly() {
    // Ring of 3 = triangle, ecc = 1, bound = λ = 1; the two-hop line
    // completes at 2, a gap of 1 against the BFS bound (and exactly
    // f_1(3), so the complete-graph optimality pass stays silent).
    let s = Schedule::new(
        3,
        Latency::from_int(1),
        vec![
            TimedSend {
                src: 0,
                dst: 1,
                send_start: Time::ZERO,
            },
            TimedSend {
                src: 1,
                dst: 2,
                send_start: Time::ONE,
            },
        ],
    );
    let diags = lint_schedule_with_topology(&s, &LintOptions::default(), &topo("ring", 3));
    let text = render_report(&diags, "golden.json");
    let expected = "\
warning[P0018]: completes at t = 2; the ring topology lower bound (m-1) + lambda*ecc(p0) is 1 (gap 1 units)
  --> golden.json
   = at: t = 1
   = rule: a message reaching a processor at graph distance d from the originator
     traverses d edges and each hop costs lambda, so broadcasting m messages
     over a sparse topology takes at least (m-1) + lambda*ecc(originator)
     time (static BFS lower bound; the sparse-graph analogue of Lemma 8)

golden.json: 1 warning
";
    assert_eq!(text, expected);
}

#[test]
fn p0019_band_partition_renders_exactly_and_suppresses_p0005() {
    // A 2-ring oracle against a 3-processor schedule: p2 sits outside
    // the graph, so the timing-level P0005 folds into P0019.
    let s = Schedule::new(
        3,
        Latency::from_int(2),
        vec![TimedSend {
            src: 0,
            dst: 1,
            send_start: Time::ZERO,
        }],
    );
    let diags = lint_schedule_with_topology(&s, &LintOptions::default(), &topo("ring", 2));
    let text = render_report(&diags, "golden.json");
    let expected = "\
error[P0019]: p2 has no path from the originator p0 in the ring topology — no schedule can inform it (suppresses the timing-level P0005)
  --> golden.json: p2
   = rule: a broadcast must deliver the originator's message to all n-1 other
     processors; a processor with no path from the originator in the
     communication graph can never be informed, by any schedule (problem
     statement, Section 1, over a sparse topology)

golden.json: 1 error
";
    assert_eq!(text, expected);
}

#[test]
fn schedule_json_topology_field_snapshot_and_round_trip() {
    let s = Schedule::new(
        3,
        Latency::from_ratio(5, 2),
        vec![
            TimedSend {
                src: 0,
                dst: 1,
                send_start: Time::ZERO,
            },
            TimedSend {
                src: 0,
                dst: 2,
                send_start: Time::ONE,
            },
        ],
    );
    let text = json::schedule_to_json_with_topology(&s, Some(2), Some("torus:1x3"));
    let expected = "\
{
  \"n\": 3,
  \"lambda\": \"5/2\",
  \"messages\": 2,
  \"topology\": \"torus:1x3\",
  \"sends\": [
    { \"src\": 0, \"dst\": 1, \"at\": \"0\" },
    { \"src\": 0, \"dst\": 2, \"at\": \"1\" }
  ]
}
";
    assert_eq!(text, expected);

    // Both parsers recover the field; omitting it round-trips to None.
    let parsed = json::parse_schedule(&text).unwrap();
    assert_eq!(parsed.topology.as_deref(), Some("torus:1x3"));
    assert_eq!(parsed.messages, Some(2));
    assert_eq!(parsed.schedule.sends(), s.sends());
    let streamed = json::parse_schedule_reader(text.as_bytes()).unwrap();
    assert_eq!(streamed.topology.as_deref(), Some("torus:1x3"));
    assert_eq!(streamed.schedule.sends(), s.sends());

    let plain = json::schedule_to_json(&s, Some(2));
    assert!(!plain.contains("topology"));
    assert_eq!(json::parse_schedule(&plain).unwrap().topology, None);
    assert_eq!(
        json::parse_schedule_reader(plain.as_bytes())
            .unwrap()
            .topology,
        None
    );
}
