//! ASCII Gantt charts of simulation traces.
//!
//! Renders each processor's port activity on a shared time axis:
//! `S` = output port busy sending, `R` = input port busy receiving,
//! `B` = both at once (the model's *simultaneous I/O*), `·` = idle.
//! Used by the examples and the `postal-cli` tool to make schedules
//! visible — the paper's Figure 1 as a timeline instead of a tree.
//!
//! The rendering itself lives in [`postal_obs::gantt`], which consumes
//! the observability span stream; this module adapts a [`Trace`] to it.

use crate::trace::Trace;

/// Renders a trace as an ASCII Gantt chart with `cells_per_unit` columns
/// per time unit.
///
/// ```
/// use postal_sim::gantt::render_gantt;
/// use postal_sim::Trace;
///
/// let trace: Trace<()> = Trace::new();
/// let art = render_gantt(&trace, 2, 1);
/// assert!(art.contains("p0"));
/// assert!(art.contains("p1"));
/// ```
///
/// # Panics
/// Panics if `cells_per_unit == 0` or `n == 0`.
pub fn render_gantt<P>(trace: &Trace<P>, n: usize, cells_per_unit: u32) -> String {
    postal_obs::gantt::render_spans(
        n,
        &trace.port_spans(),
        trace.completion_time(),
        cells_per_unit,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ProcId, SendSeq};
    use crate::trace::Transfer;
    use postal_model::Time;

    fn transfer(src: u32, dst: u32, start: i128, lam_num: i128, lam_den: i128) -> Transfer<()> {
        let send_start = Time::from_int(start);
        let lam = Time::new(lam_num, lam_den);
        Transfer {
            seq: SendSeq(0),
            src: ProcId(src),
            dst: ProcId(dst),
            send_start,
            send_finish: send_start + Time::ONE,
            arrival: send_start + lam - Time::ONE,
            recv_start: send_start + lam - Time::ONE,
            recv_finish: send_start + lam,
            payload: (),
        }
    }

    #[test]
    fn renders_send_and_receive_marks() {
        let mut trace = Trace::new();
        trace.push(transfer(0, 1, 0, 2, 1));
        let art = render_gantt(&trace, 2, 2);
        let lines: Vec<&str> = art.lines().collect();
        // p0 sends during [0,1): first two cells S.
        assert!(lines[1].contains("S"));
        // p1 receives during [1,2): cells 2..4 R.
        assert!(lines[2].contains("R"));
        assert!(art.contains("completion t = 2"));
    }

    #[test]
    fn simultaneous_io_marked_as_both() {
        let mut trace = Trace::new();
        // p1 receives during [1, 2) and sends during [1, 2): B cells.
        trace.push(transfer(0, 1, 0, 2, 1));
        trace.push(transfer(1, 0, 1, 2, 1));
        let art = render_gantt(&trace, 2, 2);
        assert!(art.contains('B'), "expected overlap marker in:\n{art}");
    }

    #[test]
    fn empty_trace_renders_minimal_grid() {
        let trace: Trace<()> = Trace::new();
        let art = render_gantt(&trace, 3, 1);
        assert_eq!(art.lines().count(), 5); // axis + 3 procs + footer
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_panics() {
        let trace: Trace<()> = Trace::new();
        let _ = render_gantt(&trace, 1, 0);
    }
}
