//! ASCII Gantt charts of simulation traces.
//!
//! Renders each processor's port activity on a shared time axis:
//! `S` = output port busy sending, `R` = input port busy receiving,
//! `B` = both at once (the model's *simultaneous I/O*), `·` = idle.
//! Used by the examples and the `postal-cli` tool to make schedules
//! visible — the paper's Figure 1 as a timeline instead of a tree.

use crate::ids::ProcId;
use crate::trace::Trace;
use postal_model::{Ratio, Time};
use std::fmt::Write as _;

/// Renders a trace as an ASCII Gantt chart with `cells_per_unit` columns
/// per time unit.
///
/// ```
/// use postal_sim::gantt::render_gantt;
/// use postal_sim::Trace;
///
/// let trace: Trace<()> = Trace::new();
/// let art = render_gantt(&trace, 2, 1);
/// assert!(art.contains("p0"));
/// assert!(art.contains("p1"));
/// ```
///
/// # Panics
/// Panics if `cells_per_unit == 0` or `n == 0`.
pub fn render_gantt<P>(trace: &Trace<P>, n: usize, cells_per_unit: u32) -> String {
    assert!(cells_per_unit >= 1, "resolution must be at least 1 cell");
    assert!(n >= 1, "at least one processor required");
    let horizon = trace.completion_time();
    let cells_total = (horizon.as_ratio() * Ratio::from_int(cells_per_unit as i128))
        .ceil()
        .max(1) as usize;

    // 0 = idle, 1 = send, 2 = recv, 3 = both.
    let mut grid = vec![vec![0u8; cells_total]; n];
    let mut mark = |proc: ProcId, from: Time, to: Time, bit: u8| {
        let a = (from.as_ratio() * Ratio::from_int(cells_per_unit as i128))
            .floor()
            .max(0) as usize;
        let b = (to.as_ratio() * Ratio::from_int(cells_per_unit as i128))
            .ceil()
            .max(0) as usize;
        for cell in grid[proc.index()][a.min(cells_total)..b.min(cells_total)].iter_mut() {
            *cell |= bit;
        }
    };
    for t in trace.transfers() {
        mark(t.src, t.send_start, t.send_finish, 1);
        mark(t.dst, t.recv_start, t.recv_finish, 2);
    }

    let mut out = String::new();
    // Axis: a tick every unit.
    let label_width = format!("p{}", n - 1).len().max(3);
    let _ = write!(out, "{:>label_width$} ", "t");
    for c in 0..cells_total {
        let ch = if c % cells_per_unit as usize == 0 {
            '|'
        } else {
            ' '
        };
        out.push(ch);
    }
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let _ = write!(out, "{:>label_width$} ", format!("p{i}"));
        for &cell in row {
            out.push(match cell {
                0 => '·',
                1 => 'S',
                2 => 'R',
                _ => 'B',
            });
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "{:>label_width$} (1 unit = {} cells; completion t = {})",
        "", cells_per_unit, horizon
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SendSeq;
    use crate::trace::Transfer;

    fn transfer(src: u32, dst: u32, start: i128, lam_num: i128, lam_den: i128) -> Transfer<()> {
        let send_start = Time::from_int(start);
        let lam = Time::new(lam_num, lam_den);
        Transfer {
            seq: SendSeq(0),
            src: ProcId(src),
            dst: ProcId(dst),
            send_start,
            send_finish: send_start + Time::ONE,
            arrival: send_start + lam - Time::ONE,
            recv_start: send_start + lam - Time::ONE,
            recv_finish: send_start + lam,
            payload: (),
        }
    }

    #[test]
    fn renders_send_and_receive_marks() {
        let mut trace = Trace::new();
        trace.push(transfer(0, 1, 0, 2, 1));
        let art = render_gantt(&trace, 2, 2);
        let lines: Vec<&str> = art.lines().collect();
        // p0 sends during [0,1): first two cells S.
        assert!(lines[1].contains("S"));
        // p1 receives during [1,2): cells 2..4 R.
        assert!(lines[2].contains("R"));
        assert!(art.contains("completion t = 2"));
    }

    #[test]
    fn simultaneous_io_marked_as_both() {
        let mut trace = Trace::new();
        // p1 receives during [1, 2) and sends during [1, 2): B cells.
        trace.push(transfer(0, 1, 0, 2, 1));
        trace.push(transfer(1, 0, 1, 2, 1));
        let art = render_gantt(&trace, 2, 2);
        assert!(art.contains('B'), "expected overlap marker in:\n{art}");
    }

    #[test]
    fn empty_trace_renders_minimal_grid() {
        let trace: Trace<()> = Trace::new();
        let art = render_gantt(&trace, 3, 1);
        assert_eq!(art.lines().count(), 5); // axis + 3 procs + footer
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_panics() {
        let trace: Trace<()> = Trace::new();
        let _ = render_gantt(&trace, 1, 0);
    }
}
