//! # postal-sim
//!
//! A deterministic discrete-event simulator for the postal model
//! MPS(n, λ) of Bar-Noy and Kipnis (SPAA 1992).
//!
//! The simulator executes *event-driven processor programs* — the exact
//! algorithm style the paper advocates — under the model's port semantics:
//! one output port and one input port per processor, one unit of busy time
//! per send and per receive, and a latency of λ units between send start
//! and receive finish. All timing is exact rational arithmetic (from
//! `postal-model`), so simulated completion times can be compared for
//! *equality* against the paper's closed forms.
//!
//! ## Structure
//!
//! * [`ids`] — processor and message identifiers;
//! * [`calendar`] — the O(1) bucket event queue behind the fast engine;
//! * [`latency_model`] — uniform λ (the paper), plus the time-varying and
//!   hierarchical relaxations proposed in the paper's Section 5;
//! * [`program`] — the event-driven [`program::Program`] trait shared with
//!   the threaded executor in `postal-runtime`;
//! * [`engine`] — the event queue, port accounting, strict/queued receive
//!   contention policies, and run reports;
//! * [`trace`] — complete per-transfer timing records with order-
//!   preservation checks;
//! * [`gantt`] — ASCII Gantt charts of traces;
//! * [`jitter`] — deterministic bounded-jitter latency, for probing the
//!   paper's uniform-λ assumption;
//! * [`lockstep`] — a second, time-stepped engine implementation used to
//!   cross-validate the event-driven one;
//! * [`faults`] — deterministic message-drop and crash injection, to
//!   observe how the (fault-intolerant) paper algorithms fail.
//!
//! ## Example: measuring a broadcast
//!
//! ```
//! use postal_sim::prelude::*;
//! use postal_model::{Latency, Time};
//!
//! // A naive "root sends to everyone" star broadcast on 4 processors.
//! struct Root;
//! impl Program<()> for Root {
//!     fn on_start(&mut self, ctx: &mut dyn Context<()>) {
//!         for i in 1..ctx.n() {
//!             ctx.send(ProcId::from(i), ());
//!         }
//!     }
//!     fn on_receive(&mut self, _: &mut dyn Context<()>, _: ProcId, _: ()) {}
//! }
//!
//! let latency = Uniform(Latency::from_int(2));
//! let mut programs: Vec<Box<dyn Program<()>>> = vec![Box::new(Root)];
//! for _ in 1..4 { programs.push(Box::new(Idle)); }
//! let report = Simulation::new(4, &latency).run(programs).unwrap();
//! report.assert_model_clean();
//! // Last send starts at t = 2, completes at t = 2 + λ = 4.
//! assert_eq!(report.completion, Time::from_int(4));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod engine;
pub mod faults;
pub mod gantt;
pub mod ids;
pub mod jitter;
pub mod latency_model;
pub mod lockstep;
pub mod obs;
pub mod program;
pub mod trace;

/// One-stop imports for writing and running programs.
pub mod prelude {
    pub use crate::engine::{
        EdgeViolation, PortMode, RunReport, SimConfig, SimError, Simulation, Violation,
    };
    pub use crate::faults::FaultPlan;
    pub use crate::gantt::render_gantt;
    pub use crate::ids::{ProcId, SendSeq};
    pub use crate::jitter::Jittered;
    pub use crate::latency_model::{Hierarchical, LatencyModel, TimeVarying, Uniform};
    pub use crate::program::{programs_from, Context, Idle, Program};
    pub use crate::trace::{Trace, Transfer};
}

pub use calendar::{CalendarQueue, Lane};
pub use engine::{EdgeViolation, PortMode, RunReport, SimConfig, SimError, Simulation};
pub use faults::FaultPlan;
pub use ids::{ProcId, SendSeq};
pub use jitter::Jittered;
pub use latency_model::{Hierarchical, LatencyModel, TimeVarying, Uniform};
pub use lockstep::{run_lockstep, run_lockstep_observed};
pub use obs::{log_from_report, trace_events};
pub use program::{Context, Idle, Program};
pub use trace::{Trace, Transfer};
