//! Fault injection: message loss and processor crashes.
//!
//! The postal model (and the paper) assume a reliable network and live
//! processors. [`FaultPlan`] lets tests and experiments break those
//! assumptions deterministically, to observe *how* the algorithms fail —
//! e.g. a single dropped message early in a BCAST cascade silences an
//! entire delegated sub-range, while the same drop near the leaves loses
//! one processor. This is diagnosis tooling: none of the paper's
//! algorithms are fault-tolerant, and the tests document exactly that.
//!
//! Faults are applied at the engine level:
//!
//! * a message whose global send sequence number is in `drop_sends`
//!   vanishes in flight (the sender still spends its send unit);
//! * a processor listed in `crashes` stops participating at its crash
//!   time: messages it would receive after that are discarded, and its
//!   callbacks no longer run (sends already in flight are unaffected).

use crate::ids::ProcId;
use postal_model::Time;
use std::collections::HashSet;

/// A deterministic fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Global send sequence numbers to drop in flight.
    pub drop_sends: HashSet<u64>,
    /// `(processor, crash_time)`: the processor processes no event whose
    /// time is ≥ `crash_time`.
    pub crashes: Vec<(ProcId, Time)>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Drops the `seq`-th send (global issue order).
    pub fn dropping(mut self, seq: u64) -> FaultPlan {
        self.drop_sends.insert(seq);
        self
    }

    /// Crashes `proc` at `at`.
    pub fn crashing(mut self, proc: ProcId, at: Time) -> FaultPlan {
        self.crashes.push((proc, at));
        self
    }

    /// Whether any fault is configured.
    pub fn is_empty(&self) -> bool {
        self.drop_sends.is_empty() && self.crashes.is_empty()
    }

    /// True if `proc` has crashed by time `t`.
    pub fn crashed(&self, proc: ProcId, t: Time) -> bool {
        self.crashes.iter().any(|&(p, at)| p == proc && t >= at)
    }

    /// True if this send sequence number is scheduled to be lost.
    pub fn drops(&self, seq: u64) -> bool {
        self.drop_sends.contains(&seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_queries() {
        let plan = FaultPlan::none()
            .dropping(3)
            .crashing(ProcId(2), Time::from_int(5));
        assert!(!plan.is_empty());
        assert!(plan.drops(3));
        assert!(!plan.drops(4));
        assert!(!plan.crashed(ProcId(2), Time::from_int(4)));
        assert!(plan.crashed(ProcId(2), Time::from_int(5)));
        assert!(plan.crashed(ProcId(2), Time::from_int(9)));
        assert!(!plan.crashed(ProcId(1), Time::from_int(9)));
        assert!(FaultPlan::none().is_empty());
    }
}
