//! Identifier newtypes for processors and messages.

use std::fmt;

/// A processor identifier `p_i` in MPS(n, λ): a dense index in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The broadcast originator `p_0`.
    pub const ROOT: ProcId = ProcId(0);

    /// The index as `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for ProcId {
    fn from(v: u32) -> ProcId {
        ProcId(v)
    }
}

impl From<usize> for ProcId {
    fn from(v: usize) -> ProcId {
        ProcId(u32::try_from(v).expect("processor index exceeds u32"))
    }
}

/// A globally unique, monotonically increasing send sequence number.
///
/// Assigned by the engine in the order sends are *issued*; used as the
/// deterministic tie-breaker for simultaneous events and as a stable
/// message identity in traces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SendSeq(pub u64);

impl fmt::Debug for SendSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_conversions() {
        assert_eq!(ProcId::from(3u32).index(), 3);
        assert_eq!(ProcId::from(7usize), ProcId(7));
        assert_eq!(ProcId::ROOT, ProcId(0));
    }

    #[test]
    fn formatting() {
        assert_eq!(format!("{:?}", ProcId(5)), "p5");
        assert_eq!(format!("{}", ProcId(5)), "p5");
        assert_eq!(format!("{:?}", SendSeq(9)), "#9");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(ProcId(1) < ProcId(2));
        assert!(SendSeq(1) < SendSeq(2));
    }
}
