//! The discrete-event MPS(n, λ) engine.
//!
//! The engine executes event-driven [`Program`]s under the postal model's
//! three defining constraints (Definitions 1 and 2 of the paper):
//!
//! * **Full connectivity** — any processor may send to any other.
//! * **Simultaneous I/O** — each processor has one input port and one
//!   output port that operate independently; it may send one message and
//!   receive another at the same time, but never two sends (or two
//!   receives) concurrently.
//! * **Communication latency** — a send started at `t` occupies the
//!   sender's output port during `[t, t+1]` and the receiver's input port
//!   during `[t+λ−1, t+λ]`.
//!
//! Output ports serialize sends automatically: a program may issue several
//! sends from one callback, and they are transmitted back-to-back at one
//! unit each — this is precisely how the paper's algorithms "send M to a
//! new processor every unit of time".
//!
//! Input-port contention is where the model is strict: the paper's
//! algorithms are constructed so that *no two messages ever arrive at the
//! same processor in overlapping receive windows*. The engine offers two
//! treatments (see [`PortMode`]): `Strict` keeps model timing and records
//! every overlap as a [`Violation`] (the paper's algorithms must produce
//! zero), while `Queued` delays receives FIFO like a real NIC would —
//! useful for evaluating non-latency-aware schedules.

//! ## Two engines, one semantics
//!
//! [`Simulation::run`] is the production engine: a calendar/bucket
//! queue ([`crate::calendar`]) keyed on [`FastTime`] half-units, flat
//! `u32` processor ids and fixed-point port accounting, sized for
//! n = 10^6 runs. [`Simulation::run_reference`] is the original seed
//! engine — exact rationals on a binary heap — kept verbatim as the
//! behavioral pin: `tests/engine_differential.rs` asserts the two
//! produce identical traces, violations, counters and observability
//! streams over the acceptance grid. When event times leave the
//! half-unit lattice (off-lattice λ, extreme magnitudes), the fast
//! engine's queue routes those events through an exact-`Ratio` fallback
//! heap, so order stays reference-identical rather than approximately
//! right.

use crate::calendar::{CalendarQueue, Lane};
use crate::ids::{ProcId, SendSeq};
use crate::latency_model::LatencyModel;
use crate::program::{Context, Program};
use crate::trace::{Trace, Transfer};
use postal_model::{FastTime, Time, Topology};
use postal_obs::{ObsEvent, Recorder};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// How the engine treats overlapping receive windows at one input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PortMode {
    /// Postal-model semantics: receives happen exactly at `send+λ−1` and
    /// any overlap is recorded as a [`Violation`]. The paper's algorithms
    /// are conflict-free, so a nonempty violation list indicates a broken
    /// schedule.
    #[default]
    Strict,
    /// Realistic semantics: an input port busy with one receive delays the
    /// next (FIFO by arrival, ties by send issue order), shifting all
    /// subsequent timing.
    Queued,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Input-port contention policy.
    pub port_mode: PortMode,
    /// Hard cap on processed events, to turn runaway programs into errors
    /// instead of hangs.
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            port_mode: PortMode::Strict,
            max_events: 50_000_000,
        }
    }
}

/// A strict-mode input-port overlap: a message was ready at `arrival`
/// while the destination's port was still busy until `port_busy_until`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending transfer's sequence number.
    pub seq: SendSeq,
    /// Destination whose input port was double-booked.
    pub dst: ProcId,
    /// Model arrival time of the late message.
    pub arrival: Time,
    /// When the port would have become free.
    pub port_busy_until: Time,
}

/// A send across a pair that is not an edge of the restricting topology
/// (see [`Simulation::restrict_to`]). The message is still delivered —
/// the engine records the violation honestly instead of silently
/// dropping or rerouting it — so completion times are unchanged and the
/// report shows exactly which transfers a sparse network could not have
/// carried. The static counterpart is lint code `P0017`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeViolation {
    /// The offending transfer's sequence number.
    pub seq: SendSeq,
    /// Sender.
    pub src: ProcId,
    /// Receiver; `src`–`dst` is not an edge of the topology.
    pub dst: ProcId,
    /// When the send started.
    pub send_start: Time,
}

/// Per-processor activity counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Messages sent.
    pub sends: u64,
    /// Messages received.
    pub recvs: u64,
}

/// The result of a simulation run.
#[derive(Debug)]
pub struct RunReport<P> {
    /// The paper's running time: when the last receive finished.
    pub completion: Time,
    /// Every transfer, in receive-completion order.
    pub trace: Trace<P>,
    /// Strict-mode receive overlaps (always empty in `Queued` mode).
    pub violations: Vec<Violation>,
    /// Sends across non-edges of the restricting topology (always empty
    /// without [`Simulation::restrict_to`]).
    pub edge_violations: Vec<EdgeViolation>,
    /// Per-processor send/receive counters.
    pub proc_stats: Vec<ProcStats>,
    /// Number of events processed.
    pub events: u64,
}

impl<P> RunReport<P> {
    /// Asserts that the run respected strict postal-model semantics.
    ///
    /// # Panics
    /// Panics (with the first violation) if any receive overlap occurred.
    pub fn assert_model_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "postal-model violation: {:?} (total {})",
            self.violations[0],
            self.violations.len()
        );
        assert!(
            self.edge_violations.is_empty(),
            "topology violation: {:?} (total {})",
            self.edge_violations[0],
            self.edge_violations.len()
        );
    }

    /// Total number of messages transferred.
    pub fn messages(&self) -> usize {
        self.trace.len()
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event cap was reached; the program set is likely divergent.
    EventLimitExceeded {
        /// The configured cap.
        limit: u64,
    },
    /// The number of programs supplied does not match `n`.
    WrongProgramCount {
        /// Expected processor count.
        expected: usize,
        /// Programs supplied.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventLimitExceeded { limit } => {
                write!(f, "event limit of {limit} exceeded; divergent program?")
            }
            SimError::WrongProgramCount { expected, got } => {
                write!(f, "expected {expected} programs, got {got}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A configured simulation of MPS(n, ·) over a latency model.
pub struct Simulation<'a> {
    n: usize,
    latency: &'a dyn LatencyModel,
    config: SimConfig,
    faults: crate::faults::FaultPlan,
    recorder: Option<&'a dyn Recorder>,
    discard_trace: bool,
    topology: Option<Topology>,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation of `n` processors over the given latency model
    /// with default (strict) configuration.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, latency: &'a dyn LatencyModel) -> Simulation<'a> {
        assert!(
            n >= 1,
            "a message-passing system needs at least 1 processor"
        );
        Simulation {
            n,
            latency,
            config: SimConfig::default(),
            faults: crate::faults::FaultPlan::none(),
            recorder: None,
            discard_trace: false,
            topology: None,
        }
    }

    /// Restricts communication to the edges of `topology`: every send
    /// across a non-adjacent pair is recorded as an [`EdgeViolation`] in
    /// [`RunReport::edge_violations`]. The message is still delivered —
    /// timing, traces and the observability stream are byte-identical to
    /// an unrestricted run — so the report separates "what happened"
    /// from "what a sparse network could have carried". On the complete
    /// graph this never fires.
    pub fn restrict_to(mut self, topology: &Topology) -> Simulation<'a> {
        self.topology = Some(*topology);
        self
    }

    /// Selects the input-port contention policy.
    pub fn port_mode(mut self, mode: PortMode) -> Simulation<'a> {
        self.config.port_mode = mode;
        self
    }

    /// Overrides the processed-event cap.
    pub fn max_events(mut self, max: u64) -> Simulation<'a> {
        self.config.max_events = max;
        self
    }

    /// Injects a deterministic fault schedule (message drops, crashes).
    pub fn faults(mut self, plan: crate::faults::FaultPlan) -> Simulation<'a> {
        self.faults = plan;
        self
    }

    /// Streams every engine event (sends, receives, violations, faults,
    /// wake-ups) into an observability recorder as the run executes.
    pub fn observe(mut self, recorder: &'a dyn Recorder) -> Simulation<'a> {
        self.recorder = Some(recorder);
        self
    }

    /// Runs trace-free: transfers are *not* accumulated into
    /// [`RunReport::trace`], which comes back empty (and
    /// [`RunReport::messages`] reads zero). The completion time is kept
    /// as a running maximum instead, so [`RunReport::completion`] is
    /// unchanged. This is the O(n)-memory mode for n → 10⁶ runs whose
    /// analysis happens in-stream — pair it with an observing recorder
    /// (e.g. a streaming lint sink) to keep the full correctness story
    /// without the ~200 MB materialized trace.
    pub fn discard_trace(mut self) -> Simulation<'a> {
        self.discard_trace = true;
        self
    }

    /// Runs the given per-processor programs to quiescence on the fast
    /// calendar-queue engine.
    ///
    /// Event order, timing and the observability stream are pinned to
    /// [`Simulation::run_reference`] by `tests/engine_differential.rs`;
    /// the fast path differs only in mechanism ([`FastTime`]
    /// fixed-point arithmetic and an O(1) bucket queue instead of exact
    /// rationals on a binary heap). Event times that leave the
    /// half-unit lattice — an off-lattice λ such as 7/3, or magnitudes
    /// beyond `postal_model::time::FIXED_LIMIT` — take the queue's
    /// exact-`Ratio` fallback *per event*, so precision is never lost.
    ///
    /// # Errors
    /// Returns [`SimError`] if the program count mismatches `n` or the
    /// event cap is hit; the cap also records an
    /// [`ObsEvent::Truncated`] marker so the trace itself shows it was
    /// cut short rather than reading as a quietly finished run.
    pub fn run<P: Clone>(
        &self,
        mut programs: Vec<Box<dyn Program<P>>>,
    ) -> Result<RunReport<P>, SimError> {
        if programs.len() != self.n {
            return Err(SimError::WrongProgramCount {
                expected: self.n,
                got: programs.len(),
            });
        }
        let mut st = FastState::new(self.n, self.config, self.recorder, self.faults.clone());
        st.discard_trace = self.discard_trace;
        st.topology = self.topology;
        for &(p, t) in &st.faults.crashes.clone() {
            st.emit(ObsEvent::Crash { proc: p.0, at: t });
        }

        // Time 0: every processor's on_start, in index order.
        for (i, program) in programs.iter_mut().enumerate() {
            let mut ctx = EngineCtx {
                me: ProcId::from(i),
                n: self.n,
                now: Time::ZERO,
                outbox: Vec::new(),
                wakes: Vec::new(),
            };
            program.on_start(&mut ctx);
            st.apply_ctx(ctx, FastTime::ZERO, self.latency);
        }

        while let Some((time, _lane, kind)) = st.queue.pop() {
            st.events += 1;
            if st.events > self.config.max_events {
                st.emit(ObsEvent::Truncated {
                    processed: st.events,
                    limit: self.config.max_events,
                    at: time.to_time(),
                });
                return Err(SimError::EventLimitExceeded {
                    limit: self.config.max_events,
                });
            }
            match kind {
                FastKind::Arrival {
                    seq,
                    src,
                    dst,
                    send_start,
                    payload,
                } => st.process_arrival(time, seq, src, dst, send_start, payload),
                FastKind::Deliver {
                    seq,
                    src,
                    dst,
                    send_start,
                    arrival,
                    recv_start,
                    payload,
                } => {
                    if st.crashed(dst, time) {
                        st.emit(ObsEvent::Drop {
                            seq,
                            src,
                            dst,
                            at: time.to_time(),
                        });
                        continue;
                    }
                    st.proc_stats[dst as usize].recvs += 1;
                    let transfer = Transfer {
                        seq: SendSeq(seq),
                        src: ProcId(src),
                        dst: ProcId(dst),
                        send_start: send_start.to_time(),
                        send_finish: (send_start + FastTime::ONE).to_time(),
                        arrival: arrival.to_time(),
                        recv_start: recv_start.to_time(),
                        recv_finish: time.to_time(),
                        payload,
                    };
                    st.emit(ObsEvent::Recv {
                        seq,
                        src,
                        dst,
                        arrival: transfer.arrival,
                        start: transfer.recv_start,
                        finish: transfer.recv_finish,
                        queued: transfer.was_queued(),
                    });
                    let now = transfer.recv_finish;
                    let payload = transfer.payload.clone();
                    if st.discard_trace {
                        // `time` is this receive's finish instant; the
                        // running max replaces Trace::completion_time.
                        st.completion = st.completion.max(time);
                    } else {
                        st.trace.push(transfer);
                    }
                    let mut ctx = EngineCtx {
                        me: ProcId(dst),
                        n: self.n,
                        now,
                        outbox: Vec::new(),
                        wakes: Vec::new(),
                    };
                    programs[dst as usize].on_receive(&mut ctx, ProcId(src), payload);
                    st.apply_ctx(ctx, time, self.latency);
                }
                FastKind::Wake(p) => {
                    if st.crashed(p, time) {
                        continue;
                    }
                    let at = time.to_time();
                    st.emit(ObsEvent::Wake { proc: p, at });
                    let mut ctx = EngineCtx {
                        me: ProcId(p),
                        n: self.n,
                        now: at,
                        outbox: Vec::new(),
                        wakes: Vec::new(),
                    };
                    programs[p as usize].on_wake(&mut ctx);
                    st.apply_ctx(ctx, time, self.latency);
                }
            }
        }

        Ok(RunReport {
            completion: if self.discard_trace {
                st.completion.to_time()
            } else {
                st.trace.completion_time()
            },
            trace: st.trace,
            violations: st.violations,
            edge_violations: st.edge_violations,
            proc_stats: st.proc_stats,
            events: st.events,
        })
    }

    /// Runs the programs on the seed engine — exact rationals on a
    /// binary heap — kept verbatim as the behavioral reference the fast
    /// engine is differentially tested against. Use it when auditing
    /// the fast path or reproducing pre-rewrite results; it is
    /// semantically identical and only slower.
    ///
    /// # Errors
    /// Returns [`SimError`] if the program count mismatches `n` or the
    /// event cap is hit (also recorded as [`ObsEvent::Truncated`]).
    pub fn run_reference<P: Clone>(
        &self,
        mut programs: Vec<Box<dyn Program<P>>>,
    ) -> Result<RunReport<P>, SimError> {
        if programs.len() != self.n {
            return Err(SimError::WrongProgramCount {
                expected: self.n,
                got: programs.len(),
            });
        }
        let mut engine = EngineState::new(self.n, self.config, self.recorder);
        engine.faults = self.faults.clone();
        engine.discard_trace = self.discard_trace;
        engine.topology = self.topology;
        for &(p, t) in &engine.faults.crashes.clone() {
            engine.emit(ObsEvent::Crash { proc: p.0, at: t });
        }

        // Time 0: every processor's on_start, in index order.
        for (i, program) in programs.iter_mut().enumerate() {
            let mut ctx = EngineCtx {
                me: ProcId::from(i),
                n: self.n,
                now: Time::ZERO,
                outbox: Vec::new(),
                wakes: Vec::new(),
            };
            program.on_start(&mut ctx);
            engine.apply_ctx(ctx, self.latency);
        }

        while let Some(Reverse(entry)) = engine.queue.pop() {
            engine.events += 1;
            if engine.events > self.config.max_events {
                engine.emit(ObsEvent::Truncated {
                    processed: engine.events,
                    limit: self.config.max_events,
                    at: entry.time,
                });
                return Err(SimError::EventLimitExceeded {
                    limit: self.config.max_events,
                });
            }
            match entry.kind {
                EventKind::Arrival(a) => engine.process_arrival(entry.time, a),
                EventKind::Deliver(d) => {
                    let dst = d.transfer.dst;
                    if engine.faults.crashed(dst, entry.time) {
                        engine.emit(ObsEvent::Drop {
                            seq: d.transfer.seq.0,
                            src: d.transfer.src.0,
                            dst: dst.0,
                            at: entry.time,
                        });
                        continue;
                    }
                    let from = d.transfer.src;
                    let payload = d.transfer.payload.clone();
                    engine.proc_stats[dst.index()].recvs += 1;
                    engine.emit(ObsEvent::Recv {
                        seq: d.transfer.seq.0,
                        src: from.0,
                        dst: dst.0,
                        arrival: d.transfer.arrival,
                        start: d.transfer.recv_start,
                        finish: d.transfer.recv_finish,
                        queued: d.transfer.was_queued(),
                    });
                    if engine.discard_trace {
                        // `entry.time` is this receive's finish instant.
                        engine.completion = engine.completion.max(entry.time);
                    } else {
                        engine.trace.push(d.transfer);
                    }
                    let mut ctx = EngineCtx {
                        me: dst,
                        n: self.n,
                        now: entry.time,
                        outbox: Vec::new(),
                        wakes: Vec::new(),
                    };
                    programs[dst.index()].on_receive(&mut ctx, from, payload);
                    engine.apply_ctx(ctx, self.latency);
                }
                EventKind::Wake(p) => {
                    if engine.faults.crashed(p, entry.time) {
                        continue;
                    }
                    engine.emit(ObsEvent::Wake {
                        proc: p.0,
                        at: entry.time,
                    });
                    let mut ctx = EngineCtx {
                        me: p,
                        n: self.n,
                        now: entry.time,
                        outbox: Vec::new(),
                        wakes: Vec::new(),
                    };
                    programs[p.index()].on_wake(&mut ctx);
                    engine.apply_ctx(ctx, self.latency);
                }
            }
        }

        Ok(RunReport {
            completion: if self.discard_trace {
                engine.completion
            } else {
                engine.trace.completion_time()
            },
            trace: engine.trace,
            violations: engine.violations,
            edge_violations: engine.edge_violations,
            proc_stats: engine.proc_stats,
            events: engine.events,
        })
    }
}

/// A pending arrival: the message is fully in flight; timing of the
/// receive is decided when the arrival fires (it depends on the input
/// port's state at that moment).
struct ArrivalEvent<P> {
    seq: SendSeq,
    src: ProcId,
    dst: ProcId,
    send_start: Time,
    payload: P,
}

/// A receive completing; carries the fully-timed transfer record.
struct DeliverEvent<P> {
    transfer: Transfer<P>,
}

enum EventKind<P> {
    Arrival(ArrivalEvent<P>),
    Deliver(DeliverEvent<P>),
    Wake(ProcId),
}

struct HeapEntry<P> {
    time: Time,
    counter: u64,
    kind: EventKind<P>,
}

impl<P> HeapEntry<P> {
    /// Same-instant ordering: port bookings (arrivals) first, then
    /// completed receives, then timer wake-ups — so a message whose
    /// receive finishes at `t` is already delivered when a wake-up
    /// scheduled for `t` fires.
    fn kind_rank(&self) -> u8 {
        match self.kind {
            EventKind::Arrival(_) => 0,
            EventKind::Deliver(_) => 1,
            EventKind::Wake(_) => 2,
        }
    }
}

impl<P> PartialEq for HeapEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.counter == other.counter
    }
}
impl<P> Eq for HeapEntry<P> {}
impl<P> PartialOrd for HeapEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for HeapEntry<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.kind_rank(), self.counter).cmp(&(
            other.time,
            other.kind_rank(),
            other.counter,
        ))
    }
}

struct EngineState<'r, P> {
    config: SimConfig,
    recorder: Option<&'r dyn Recorder>,
    faults: crate::faults::FaultPlan,
    queue: BinaryHeap<Reverse<HeapEntry<P>>>,
    /// When each processor's output port becomes free.
    out_free: Vec<Time>,
    /// When each processor's input port becomes free.
    in_free: Vec<Time>,
    trace: Trace<P>,
    /// Running max receive-finish, maintained instead of `trace` when
    /// the run discards it.
    completion: Time,
    discard_trace: bool,
    violations: Vec<Violation>,
    topology: Option<Topology>,
    edge_violations: Vec<EdgeViolation>,
    proc_stats: Vec<ProcStats>,
    next_seq: u64,
    next_counter: u64,
    events: u64,
}

impl<'r, P: Clone> EngineState<'r, P> {
    fn new(n: usize, config: SimConfig, recorder: Option<&'r dyn Recorder>) -> EngineState<'r, P> {
        EngineState {
            config,
            recorder,
            faults: crate::faults::FaultPlan::none(),
            queue: BinaryHeap::new(),
            out_free: vec![Time::ZERO; n],
            in_free: vec![Time::ZERO; n],
            trace: Trace::new(),
            completion: Time::ZERO,
            discard_trace: false,
            violations: Vec::new(),
            topology: None,
            edge_violations: Vec::new(),
            proc_stats: vec![ProcStats::default(); n],
            next_seq: 0,
            next_counter: 0,
            events: 0,
        }
    }

    fn emit(&self, event: ObsEvent) {
        if let Some(r) = self.recorder {
            r.record(event);
        }
    }

    fn push(&mut self, time: Time, kind: EventKind<P>) {
        let counter = self.next_counter;
        self.next_counter += 1;
        self.queue.push(Reverse(HeapEntry {
            time,
            counter,
            kind,
        }));
    }

    /// Serializes a batch of sends through `src`'s output port, starting
    /// no earlier than `now`.
    fn issue_sends(
        &mut self,
        src: ProcId,
        now: Time,
        outbox: Vec<(ProcId, P)>,
        latency: &dyn LatencyModel,
    ) {
        for (dst, payload) in outbox {
            let send_start = now.max(self.out_free[src.index()]);
            self.out_free[src.index()] = send_start + Time::ONE;
            self.proc_stats[src.index()].sends += 1;
            let seq = SendSeq(self.next_seq);
            self.next_seq += 1;
            if let Some(t) = &self.topology {
                if !t.is_edge(src.0, dst.0) {
                    self.edge_violations.push(EdgeViolation {
                        seq,
                        src,
                        dst,
                        send_start,
                    });
                }
            }
            let lam = latency.latency(src, dst, send_start);
            let arrival = send_start + lam.as_time() - Time::ONE;
            self.emit(ObsEvent::Send {
                seq: seq.0,
                src: src.0,
                dst: dst.0,
                start: send_start,
                finish: send_start + Time::ONE,
            });
            self.push(
                arrival,
                EventKind::Arrival(ArrivalEvent {
                    seq,
                    src,
                    dst,
                    send_start,
                    payload,
                }),
            );
        }
    }

    /// Applies everything a program requested during one callback: the
    /// outbox (serialized through the output port) and any wake-ups.
    fn apply_ctx(&mut self, ctx: EngineCtx<P>, latency: &dyn LatencyModel) {
        let EngineCtx {
            me,
            now,
            outbox,
            wakes,
            ..
        } = ctx;
        self.issue_sends(me, now, outbox, latency);
        for t in wakes {
            self.push(t, EventKind::Wake(me));
        }
    }

    fn process_arrival(&mut self, arrival: Time, a: ArrivalEvent<P>) {
        if self.faults.drops(a.seq.0) || self.faults.crashed(a.dst, arrival) {
            // Lost in flight, or nobody home to receive it.
            self.emit(ObsEvent::Drop {
                seq: a.seq.0,
                src: a.src.0,
                dst: a.dst.0,
                at: arrival,
            });
            return;
        }
        let port_free = self.in_free[a.dst.index()];
        let recv_start = match self.config.port_mode {
            PortMode::Strict => {
                if port_free > arrival {
                    self.emit(ObsEvent::Violation {
                        seq: a.seq.0,
                        dst: a.dst.0,
                        arrival,
                        busy_until: port_free,
                    });
                    self.violations.push(Violation {
                        seq: a.seq,
                        dst: a.dst,
                        arrival,
                        port_busy_until: port_free,
                    });
                }
                arrival
            }
            PortMode::Queued => arrival.max(port_free),
        };
        let recv_finish = recv_start + Time::ONE;
        let slot = &mut self.in_free[a.dst.index()];
        *slot = (*slot).max(recv_finish);
        self.push(
            recv_finish,
            EventKind::Deliver(DeliverEvent {
                transfer: Transfer {
                    seq: a.seq,
                    src: a.src,
                    dst: a.dst,
                    send_start: a.send_start,
                    send_finish: a.send_start + Time::ONE,
                    arrival,
                    recv_start,
                    recv_finish,
                    payload: a.payload,
                },
            }),
        );
    }
}

/// A fast-engine event. Processor ids are flat `u32`s and times are
/// [`FastTime`] fixed-point values; exact [`Time`] rationals are only
/// materialized at the edges (program callbacks, the trace, the
/// observability stream). The enum is stored by value in the calendar
/// queue's bucket deques — the recycled bucket storage is the event
/// arena, with no per-event box.
enum FastKind<P> {
    /// A message arrival: receive timing is decided when it fires.
    Arrival {
        seq: u64,
        src: u32,
        dst: u32,
        send_start: FastTime,
        payload: P,
    },
    /// A receive completing at the event's time (`recv_start + 1`).
    Deliver {
        seq: u64,
        src: u32,
        dst: u32,
        send_start: FastTime,
        arrival: FastTime,
        recv_start: FastTime,
        payload: P,
    },
    /// A timer callback firing on the given processor.
    Wake(u32),
}

/// Mutable state of the fast engine; the counterpart of the reference
/// engine's `EngineState`, with fixed-point port accounting.
struct FastState<'r, P> {
    config: SimConfig,
    recorder: Option<&'r dyn Recorder>,
    faults: crate::faults::FaultPlan,
    /// Fault-plan fast guards: skip the hash/scan lookups entirely on
    /// the (overwhelmingly common) fault-free runs.
    has_drops: bool,
    has_crashes: bool,
    queue: CalendarQueue<FastKind<P>>,
    /// When each processor's output port becomes free.
    out_free: Vec<FastTime>,
    /// When each processor's input port becomes free.
    in_free: Vec<FastTime>,
    trace: Trace<P>,
    /// Running max receive-finish, maintained instead of `trace` when
    /// the run discards it.
    completion: FastTime,
    discard_trace: bool,
    violations: Vec<Violation>,
    topology: Option<Topology>,
    edge_violations: Vec<EdgeViolation>,
    proc_stats: Vec<ProcStats>,
    next_seq: u64,
    events: u64,
}

impl<'r, P: Clone> FastState<'r, P> {
    fn new(
        n: usize,
        config: SimConfig,
        recorder: Option<&'r dyn Recorder>,
        faults: crate::faults::FaultPlan,
    ) -> FastState<'r, P> {
        FastState {
            config,
            recorder,
            has_drops: !faults.drop_sends.is_empty(),
            has_crashes: !faults.crashes.is_empty(),
            faults,
            queue: CalendarQueue::new(),
            out_free: vec![FastTime::ZERO; n],
            in_free: vec![FastTime::ZERO; n],
            trace: Trace::new(),
            completion: FastTime::ZERO,
            discard_trace: false,
            violations: Vec::new(),
            topology: None,
            edge_violations: Vec::new(),
            proc_stats: vec![ProcStats::default(); n],
            next_seq: 0,
            events: 0,
        }
    }

    fn emit(&self, event: ObsEvent) {
        if let Some(r) = self.recorder {
            r.record(event);
        }
    }

    fn crashed(&self, proc: u32, t: FastTime) -> bool {
        self.has_crashes && self.faults.crashed(ProcId(proc), t.to_time())
    }

    /// Serializes a batch of sends through `src`'s output port, starting
    /// no earlier than `now`. Mirrors the reference `issue_sends`
    /// operation for operation (counter assignment included) so event
    /// order is bit-identical.
    fn issue_sends(
        &mut self,
        src: ProcId,
        now: FastTime,
        outbox: Vec<(ProcId, P)>,
        latency: &dyn LatencyModel,
    ) {
        for (dst, payload) in outbox {
            let send_start = now.max(self.out_free[src.index()]);
            self.out_free[src.index()] = send_start + FastTime::ONE;
            self.proc_stats[src.index()].sends += 1;
            let seq = self.next_seq;
            self.next_seq += 1;
            if let Some(t) = &self.topology {
                if !t.is_edge(src.0, dst.0) {
                    self.edge_violations.push(EdgeViolation {
                        seq: SendSeq(seq),
                        src,
                        dst,
                        send_start: send_start.to_time(),
                    });
                }
            }
            let lam = latency.latency(src, dst, send_start.to_time());
            let arrival = send_start + lam.as_fast_time() - FastTime::ONE;
            if self.recorder.is_some() {
                self.emit(ObsEvent::Send {
                    seq,
                    src: src.0,
                    dst: dst.0,
                    start: send_start.to_time(),
                    finish: (send_start + FastTime::ONE).to_time(),
                });
            }
            self.queue.push(
                arrival,
                Lane::Arrival,
                FastKind::Arrival {
                    seq,
                    src: src.0,
                    dst: dst.0,
                    send_start,
                    payload,
                },
            );
        }
    }

    /// Applies everything a program requested during one callback.
    /// `now` is the callback's fixed-point time (`ctx.now` is its exact
    /// image).
    fn apply_ctx(&mut self, ctx: EngineCtx<P>, now: FastTime, latency: &dyn LatencyModel) {
        let EngineCtx {
            me, outbox, wakes, ..
        } = ctx;
        self.issue_sends(me, now, outbox, latency);
        for t in wakes {
            self.queue
                .push(FastTime::from_time(t), Lane::Wake, FastKind::Wake(me.0));
        }
    }

    fn process_arrival(
        &mut self,
        arrival: FastTime,
        seq: u64,
        src: u32,
        dst: u32,
        send_start: FastTime,
        payload: P,
    ) {
        if (self.has_drops && self.faults.drops(seq)) || self.crashed(dst, arrival) {
            // Lost in flight, or nobody home to receive it.
            self.emit(ObsEvent::Drop {
                seq,
                src,
                dst,
                at: arrival.to_time(),
            });
            return;
        }
        let port_free = self.in_free[dst as usize];
        let recv_start = match self.config.port_mode {
            PortMode::Strict => {
                if port_free > arrival {
                    let at = arrival.to_time();
                    let busy_until = port_free.to_time();
                    self.emit(ObsEvent::Violation {
                        seq,
                        dst,
                        arrival: at,
                        busy_until,
                    });
                    self.violations.push(Violation {
                        seq: SendSeq(seq),
                        dst: ProcId(dst),
                        arrival: at,
                        port_busy_until: busy_until,
                    });
                }
                arrival
            }
            PortMode::Queued => arrival.max(port_free),
        };
        let recv_finish = recv_start + FastTime::ONE;
        let slot = &mut self.in_free[dst as usize];
        *slot = (*slot).max(recv_finish);
        self.queue.push(
            recv_finish,
            Lane::Deliver,
            FastKind::Deliver {
                seq,
                src,
                dst,
                send_start,
                arrival,
                recv_start,
                payload,
            },
        );
    }
}

/// The context implementation handed to programs by the engine.
struct EngineCtx<P> {
    me: ProcId,
    n: usize,
    now: Time,
    outbox: Vec<(ProcId, P)>,
    wakes: Vec<Time>,
}

impl<P> Context<P> for EngineCtx<P> {
    fn me(&self) -> ProcId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn now(&self) -> Time {
        self.now
    }

    fn send(&mut self, dst: ProcId, payload: P) {
        assert!(
            dst.index() < self.n,
            "send to {dst:?} out of range (n = {})",
            self.n
        );
        assert!(dst != self.me, "the postal model has no self-sends");
        self.outbox.push((dst, payload));
    }

    fn wake_at(&mut self, t: Time) {
        self.wakes.push(t.max(self.now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency_model::Uniform;
    use crate::program::{Idle, Program};
    use postal_model::Latency;

    /// Root sends one message to each listed destination at start.
    struct Spray(Vec<u32>);

    impl Program<u8> for Spray {
        fn on_start(&mut self, ctx: &mut dyn Context<u8>) {
            for &d in &self.0 {
                ctx.send(ProcId(d), 0);
            }
        }
        fn on_receive(&mut self, _ctx: &mut dyn Context<u8>, _from: ProcId, _p: u8) {}
    }

    /// Forwards every received message to a fixed successor (a relay).
    struct Relay(Option<u32>);

    impl Program<u8> for Relay {
        fn on_receive(&mut self, ctx: &mut dyn Context<u8>, _from: ProcId, p: u8) {
            if let Some(next) = self.0 {
                ctx.send(ProcId(next), p);
            }
        }
    }

    fn spray_programs(n: usize, dests: Vec<u32>) -> Vec<Box<dyn Program<u8>>> {
        let mut v: Vec<Box<dyn Program<u8>>> = Vec::new();
        v.push(Box::new(Spray(dests)));
        for _ in 1..n {
            v.push(Box::new(Idle));
        }
        v
    }

    #[test]
    fn single_send_timing() {
        let lam = Uniform(Latency::from_ratio(5, 2));
        let report = Simulation::new(2, &lam)
            .run(spray_programs(2, vec![1]))
            .unwrap();
        report.assert_model_clean();
        assert_eq!(report.messages(), 1);
        let t = &report.trace.transfers()[0];
        assert_eq!(t.send_start, Time::ZERO);
        assert_eq!(t.send_finish, Time::ONE);
        assert_eq!(t.arrival, Time::new(3, 2)); // λ − 1
        assert_eq!(t.recv_start, Time::new(3, 2));
        assert_eq!(t.recv_finish, Time::new(5, 2)); // λ
        assert_eq!(report.completion, Time::new(5, 2));
    }

    #[test]
    fn output_port_serializes_sends() {
        // Three sends issued in one callback go out at t = 0, 1, 2 and
        // complete at λ, λ+1, λ+2.
        let lam = Uniform(Latency::from_int(3));
        let report = Simulation::new(4, &lam)
            .run(spray_programs(4, vec![1, 2, 3]))
            .unwrap();
        report.assert_model_clean();
        let sends: Vec<Time> = report
            .trace
            .sent_by(ProcId(0))
            .iter()
            .map(|t| t.send_start)
            .collect();
        assert_eq!(sends, vec![Time::ZERO, Time::ONE, Time::from_int(2)]);
        assert_eq!(report.completion, Time::from_int(5)); // 2 + λ
    }

    #[test]
    fn restrict_to_records_non_edge_sends_without_changing_timing() {
        // On ring:4, p0's send to p2 crosses a chord; p0 → p1 is fine.
        // Both messages are still delivered, so the trace and completion
        // match the unrestricted run exactly.
        let topo: Topology = "ring"
            .parse::<postal_model::TopologySpec>()
            .unwrap()
            .instantiate(4)
            .unwrap();
        let lam = Uniform(Latency::from_int(2));
        let free = Simulation::new(4, &lam)
            .run(spray_programs(4, vec![1, 2]))
            .unwrap();
        let restricted = Simulation::new(4, &lam)
            .restrict_to(&topo)
            .run(spray_programs(4, vec![1, 2]))
            .unwrap();
        assert_eq!(restricted.completion, free.completion);
        assert_eq!(
            restricted.trace.transfers().len(),
            free.trace.transfers().len()
        );
        assert_eq!(restricted.edge_violations.len(), 1);
        let v = &restricted.edge_violations[0];
        assert_eq!((v.src, v.dst), (ProcId(0), ProcId(2)));
        assert_eq!(v.send_start, Time::ONE);
        assert!(free.edge_violations.is_empty());

        // Both engines agree.
        let reference = Simulation::new(4, &lam)
            .restrict_to(&topo)
            .run_reference(spray_programs(4, vec![1, 2]))
            .unwrap();
        assert_eq!(reference.edge_violations, restricted.edge_violations);
    }

    #[test]
    fn restrict_to_complete_never_fires() {
        let topo = Topology::complete(4);
        let lam = Uniform(Latency::from_int(2));
        let report = Simulation::new(4, &lam)
            .restrict_to(&topo)
            .run(spray_programs(4, vec![1, 2, 3]))
            .unwrap();
        report.assert_model_clean();
        assert!(report.edge_violations.is_empty());
    }

    #[test]
    fn strict_mode_flags_receive_overlap() {
        // Two different senders both target p2 at t = 0: arrivals overlap.
        let lam = Uniform(Latency::from_int(2));
        let programs: Vec<Box<dyn Program<u8>>> = vec![
            Box::new(Spray(vec![2])),
            Box::new(Spray(vec![2])),
            Box::new(Idle),
        ];
        let report = Simulation::new(3, &lam).run(programs).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].dst, ProcId(2));
        // Strict mode keeps model timing: completion is still λ.
        assert_eq!(report.completion, Time::from_int(2));
    }

    #[test]
    fn queued_mode_delays_conflicting_receive() {
        let lam = Uniform(Latency::from_int(2));
        let programs: Vec<Box<dyn Program<u8>>> = vec![
            Box::new(Spray(vec![2])),
            Box::new(Spray(vec![2])),
            Box::new(Idle),
        ];
        let report = Simulation::new(3, &lam)
            .port_mode(PortMode::Queued)
            .run(programs)
            .unwrap();
        assert!(report.violations.is_empty());
        // First receive occupies [1, 2]; the second is pushed to [2, 3].
        assert_eq!(report.completion, Time::from_int(3));
        assert_eq!(
            report
                .trace
                .transfers()
                .iter()
                .filter(|t| t.was_queued())
                .count(),
            1
        );
    }

    #[test]
    fn relay_chain_accumulates_latency() {
        // p0 → p1 → p2 with λ = 5/2: completion = 2λ.
        let lam = Uniform(Latency::from_ratio(5, 2));
        let programs: Vec<Box<dyn Program<u8>>> = vec![
            Box::new(Spray(vec![1])),
            Box::new(Relay(Some(2))),
            Box::new(Relay(None)),
        ];
        let report = Simulation::new(3, &lam).run(programs).unwrap();
        report.assert_model_clean();
        assert_eq!(report.completion, Time::from_int(5));
        assert_eq!(report.messages(), 2);
    }

    #[test]
    fn discard_trace_keeps_completion_on_both_engines() {
        // p0 → p1 → p2 with λ = 5/2: completion = 2λ, trace-free.
        let lam = Uniform(Latency::from_ratio(5, 2));
        let programs = || -> Vec<Box<dyn Program<u8>>> {
            vec![
                Box::new(Spray(vec![1])),
                Box::new(Relay(Some(2))),
                Box::new(Relay(None)),
            ]
        };
        let fast = Simulation::new(3, &lam)
            .discard_trace()
            .run(programs())
            .unwrap();
        let reference = Simulation::new(3, &lam)
            .discard_trace()
            .run_reference(programs())
            .unwrap();
        for report in [&fast, &reference] {
            assert_eq!(report.completion, Time::from_int(5));
            assert_eq!(report.messages(), 0, "trace must stay empty");
            assert_eq!(report.proc_stats[2].recvs, 1);
        }
        // The discarded-trace run still streams its full event story.
        let rec = postal_obs::MemoryRecorder::new();
        let observed = Simulation::new(3, &lam)
            .discard_trace()
            .observe(&rec)
            .run(programs())
            .unwrap();
        let log =
            rec.into_log(postal_obs::RunMeta::new("event", 3).latency(Latency::from_ratio(5, 2)));
        assert_eq!(log.deliveries(), 2);
        assert_eq!(log.completion_time(), observed.completion);
    }

    #[test]
    fn proc_stats_count_traffic() {
        let lam = Uniform(Latency::from_int(2));
        let report = Simulation::new(3, &lam)
            .run(spray_programs(3, vec![1, 2]))
            .unwrap();
        assert_eq!(report.proc_stats[0].sends, 2);
        assert_eq!(report.proc_stats[0].recvs, 0);
        assert_eq!(report.proc_stats[1].recvs, 1);
        assert_eq!(report.proc_stats[2].recvs, 1);
    }

    #[test]
    fn observe_streams_engine_events() {
        let lam = Uniform(Latency::from_ratio(5, 2));
        let rec = postal_obs::MemoryRecorder::new();
        let report = Simulation::new(3, &lam)
            .observe(&rec)
            .run(spray_programs(3, vec![1, 2]))
            .unwrap();
        report.assert_model_clean();
        let log =
            rec.into_log(postal_obs::RunMeta::new("event", 3).latency(Latency::from_ratio(5, 2)));
        assert_eq!(log.deliveries(), 2);
        assert_eq!(log.completion_time(), report.completion);
        // The streamed events match the after-the-fact trace conversion.
        assert_eq!(log.events(), crate::obs::log_from_report(
            &report,
            "event",
            3,
            Some(Latency::from_ratio(5, 2)),
            None,
        ).events());
    }

    #[test]
    fn observe_streams_through_the_ring_recorder() {
        // The sharded ring recorder plugs into the engine exactly like
        // MemoryRecorder; with ample capacity nothing is dropped and the
        // log matches the unsampled one event for event.
        let lam = Uniform(Latency::from_ratio(5, 2));
        let ring = postal_obs::RingRecorder::new(1024);
        let full = postal_obs::MemoryRecorder::new();
        let report = Simulation::new(3, &lam)
            .observe(&ring)
            .run(spray_programs(3, vec![1, 2]))
            .unwrap();
        let _ = Simulation::new(3, &lam)
            .observe(&full)
            .run(spray_programs(3, vec![1, 2]))
            .unwrap();
        assert_eq!(ring.dropped_events(), 0);
        assert_eq!(ring.attempted_events(), ring.recorded_events());
        let meta = postal_obs::RunMeta::new("event", 3).latency(Latency::from_ratio(5, 2));
        let log = ring.into_log(meta.clone());
        assert_eq!(log.meta().dropped_events, Some(0));
        assert_eq!(log.completion_time(), report.completion);
        assert_eq!(log.events(), full.into_log(meta).events());
    }

    #[test]
    fn observe_with_tight_ring_drops_honestly() {
        // Per-shard capacity 1: most events are dropped, but every drop
        // is counted — recorded + dropped == attempted, always.
        let lam = Uniform(Latency::from_int(2));
        let ring = postal_obs::RingRecorder::new(1);
        let _ = Simulation::new(8, &lam)
            .observe(&ring)
            .run(spray_programs(8, (1..8).collect()))
            .unwrap();
        let attempted = ring.attempted_events();
        assert_eq!(attempted, 14); // 7 sends + 7 recvs
        assert_eq!(ring.recorded_events() + ring.dropped_events(), attempted);
        assert!(ring.dropped_events() > 0);
        let log = ring.into_log(postal_obs::RunMeta::new("event", 8));
        assert_eq!(
            log.meta().dropped_events,
            Some(attempted - log.events().len() as u64)
        );
    }

    #[test]
    fn observe_streams_fault_events() {
        let lam = Uniform(Latency::from_int(2));
        let rec = postal_obs::MemoryRecorder::new();
        let plan = crate::faults::FaultPlan::none()
            .dropping(1)
            .crashing(ProcId(2), Time::from_int(99));
        let _ = Simulation::new(3, &lam)
            .faults(plan)
            .observe(&rec)
            .run(spray_programs(3, vec![1, 2]))
            .unwrap();
        let log = rec.into_log(postal_obs::RunMeta::new("event", 3));
        let kinds: Vec<&str> = log.events().iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"drop"), "{kinds:?}");
        assert!(kinds.contains(&"crash"), "{kinds:?}");
    }

    #[test]
    fn wrong_program_count_is_an_error() {
        let lam = Uniform(Latency::TELEPHONE);
        let err = Simulation::new(3, &lam)
            .run(spray_programs(2, vec![1]))
            .unwrap_err();
        assert_eq!(
            err,
            SimError::WrongProgramCount {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn event_limit_stops_ping_pong() {
        // Two processors forwarding to each other forever.
        let lam = Uniform(Latency::TELEPHONE);
        let programs: Vec<Box<dyn Program<u8>>> =
            vec![Box::new(PingPongStarter), Box::new(Relay(Some(0)))];
        let err = Simulation::new(2, &lam)
            .max_events(1000)
            .run(programs)
            .unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 1000 });

        struct PingPongStarter;
        impl Program<u8> for PingPongStarter {
            fn on_start(&mut self, ctx: &mut dyn Context<u8>) {
                ctx.send(ProcId(1), 0);
            }
            fn on_receive(&mut self, ctx: &mut dyn Context<u8>, _f: ProcId, p: u8) {
                ctx.send(ProcId(1), p);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let lam = Uniform(Latency::from_ratio(5, 2));
        let runs: Vec<Vec<(ProcId, Time)>> = (0..3)
            .map(|_| {
                let mut programs: Vec<Box<dyn Program<u8>>> = Vec::new();
                programs.push(Box::new(Spray(vec![1, 2, 3])));
                programs.push(Box::new(Relay(Some(4))));
                for _ in 2..5 {
                    programs.push(Box::new(Idle));
                }
                let report = Simulation::new(5, &lam).run(programs).unwrap();
                report
                    .trace
                    .transfers()
                    .iter()
                    .map(|t| (t.dst, t.recv_finish))
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    #[should_panic(expected = "no self-sends")]
    fn self_send_panics() {
        let lam = Uniform(Latency::TELEPHONE);
        let _ = Simulation::new(2, &lam).run(spray_programs(2, vec![0]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_send_panics() {
        let lam = Uniform(Latency::TELEPHONE);
        let _ = Simulation::new(2, &lam).run(spray_programs(2, vec![7]));
    }
}
