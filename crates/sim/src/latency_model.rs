//! Latency models: how long a message takes from send-start to
//! receive-finish.
//!
//! The paper's postal model assumes a single system-wide λ ([`Uniform`]).
//! Section 5 proposes two relaxations as further research, both of which
//! this simulator supports so the extension algorithms in `postal-algos`
//! can be evaluated:
//!
//! * [`TimeVarying`] — λ changes over time (piecewise-constant in the send
//!   start time);
//! * [`Hierarchical`] — processors are grouped into clusters with a fast
//!   intra-cluster latency and a slow inter-cluster latency.

use crate::ids::ProcId;
use postal_model::{Latency, Time};

/// Determines the communication latency for a message sent from `src` to
/// `dst` whose send starts at `send_start`.
///
/// Implementations must return λ ≥ 1 (enforced by the [`Latency`] type).
pub trait LatencyModel {
    /// The latency applied to this send.
    fn latency(&self, src: ProcId, dst: ProcId, send_start: Time) -> Latency;

    /// The largest latency this model can ever return, if known.
    ///
    /// Used only for reporting; defaults to `None`.
    fn max_latency(&self) -> Option<Latency> {
        None
    }
}

/// The paper's model: one system-wide λ for every pair and every time.
#[derive(Debug, Clone, Copy)]
pub struct Uniform(pub Latency);

impl LatencyModel for Uniform {
    fn latency(&self, _src: ProcId, _dst: ProcId, _send_start: Time) -> Latency {
        self.0
    }

    fn max_latency(&self) -> Option<Latency> {
        Some(self.0)
    }
}

/// Piecewise-constant time-varying latency (Section 5: "explore
/// time-changing values of λ").
///
/// The latency of a send is the value of the last step at or before the
/// send's start time.
#[derive(Debug, Clone)]
pub struct TimeVarying {
    /// `(from_time, λ)` steps, sorted by time; the first entry must be at
    /// time 0.
    steps: Vec<(Time, Latency)>,
}

impl TimeVarying {
    /// Builds a piecewise-constant profile from `(from_time, λ)` steps.
    ///
    /// # Panics
    /// Panics if `steps` is empty, unsorted, or does not start at time 0.
    pub fn new(steps: Vec<(Time, Latency)>) -> TimeVarying {
        assert!(!steps.is_empty(), "profile needs at least one step");
        assert!(
            steps[0].0 == Time::ZERO,
            "profile must define λ from time 0"
        );
        assert!(
            steps.windows(2).all(|w| w[0].0 < w[1].0),
            "profile steps must be strictly increasing in time"
        );
        TimeVarying { steps }
    }

    /// The λ in effect at time `t`.
    pub fn at(&self, t: Time) -> Latency {
        // Last step with step_time ≤ t (partition_point gives the first
        // index where the predicate fails).
        let idx = self.steps.partition_point(|&(st, _)| st <= t);
        self.steps[idx - 1].1
    }

    /// The profile's steps.
    pub fn steps(&self) -> &[(Time, Latency)] {
        &self.steps
    }
}

impl LatencyModel for TimeVarying {
    fn latency(&self, _src: ProcId, _dst: ProcId, send_start: Time) -> Latency {
        self.at(send_start)
    }

    fn max_latency(&self) -> Option<Latency> {
        self.steps.iter().map(|&(_, l)| l).max()
    }
}

/// Two-level latency hierarchy (Section 5: "hierarchies of latency
/// parameters ... to model subsystems within a larger system").
///
/// Processors belong to clusters; messages within a cluster travel at
/// `local` λ, messages between clusters at `remote` λ.
#[derive(Debug, Clone)]
pub struct Hierarchical {
    cluster_of: Vec<u32>,
    local: Latency,
    remote: Latency,
}

impl Hierarchical {
    /// Builds a hierarchy from an explicit cluster assignment.
    ///
    /// # Panics
    /// Panics if `cluster_of` is empty or `local > remote` (a hierarchy
    /// where remote messages are faster than local ones is a modeling
    /// error).
    pub fn new(cluster_of: Vec<u32>, local: Latency, remote: Latency) -> Hierarchical {
        assert!(!cluster_of.is_empty(), "at least one processor required");
        assert!(
            local <= remote,
            "intra-cluster latency must not exceed inter-cluster latency"
        );
        Hierarchical {
            cluster_of,
            local,
            remote,
        }
    }

    /// Builds a hierarchy of `n` processors split into consecutive blocks
    /// of `cluster_size`.
    ///
    /// # Panics
    /// Panics if `cluster_size == 0`.
    pub fn blocks(n: usize, cluster_size: usize, local: Latency, remote: Latency) -> Hierarchical {
        assert!(cluster_size > 0, "cluster size must be positive");
        let cluster_of = (0..n).map(|i| (i / cluster_size) as u32).collect();
        Hierarchical::new(cluster_of, local, remote)
    }

    /// The cluster index of a processor.
    pub fn cluster(&self, p: ProcId) -> u32 {
        self.cluster_of[p.index()]
    }

    /// The intra-cluster latency.
    pub fn local(&self) -> Latency {
        self.local
    }

    /// The inter-cluster latency.
    pub fn remote(&self) -> Latency {
        self.remote
    }

    /// Number of distinct clusters.
    pub fn num_clusters(&self) -> usize {
        (self.cluster_of.iter().copied().max().unwrap_or(0) + 1) as usize
    }
}

impl LatencyModel for Hierarchical {
    fn latency(&self, src: ProcId, dst: ProcId, _send_start: Time) -> Latency {
        if self.cluster(src) == self.cluster(dst) {
            self.local
        } else {
            self.remote
        }
    }

    fn max_latency(&self) -> Option<Latency> {
        Some(self.remote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_constant() {
        let m = Uniform(Latency::from_ratio(5, 2));
        assert_eq!(
            m.latency(ProcId(0), ProcId(3), Time::ZERO),
            Latency::from_ratio(5, 2)
        );
        assert_eq!(m.max_latency(), Some(Latency::from_ratio(5, 2)));
    }

    #[test]
    fn time_varying_steps() {
        let m = TimeVarying::new(vec![
            (Time::ZERO, Latency::from_int(2)),
            (Time::from_int(10), Latency::from_int(5)),
            (Time::from_int(20), Latency::from_int(3)),
        ]);
        assert_eq!(m.at(Time::ZERO), Latency::from_int(2));
        assert_eq!(m.at(Time::new(19, 2)), Latency::from_int(2));
        assert_eq!(m.at(Time::from_int(10)), Latency::from_int(5));
        assert_eq!(m.at(Time::from_int(15)), Latency::from_int(5));
        assert_eq!(m.at(Time::from_int(100)), Latency::from_int(3));
        assert_eq!(m.max_latency(), Some(Latency::from_int(5)));
    }

    #[test]
    #[should_panic(expected = "time 0")]
    fn time_varying_must_start_at_zero() {
        let _ = TimeVarying::new(vec![(Time::ONE, Latency::TELEPHONE)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn time_varying_must_be_sorted() {
        let _ = TimeVarying::new(vec![
            (Time::ZERO, Latency::TELEPHONE),
            (Time::from_int(5), Latency::from_int(2)),
            (Time::from_int(5), Latency::from_int(3)),
        ]);
    }

    #[test]
    fn hierarchical_blocks() {
        let m = Hierarchical::blocks(10, 4, Latency::TELEPHONE, Latency::from_int(8));
        assert_eq!(m.num_clusters(), 3);
        assert_eq!(m.cluster(ProcId(0)), 0);
        assert_eq!(m.cluster(ProcId(3)), 0);
        assert_eq!(m.cluster(ProcId(4)), 1);
        assert_eq!(m.cluster(ProcId(9)), 2);
        assert_eq!(
            m.latency(ProcId(0), ProcId(3), Time::ZERO),
            Latency::TELEPHONE
        );
        assert_eq!(
            m.latency(ProcId(0), ProcId(4), Time::ZERO),
            Latency::from_int(8)
        );
        assert_eq!(m.max_latency(), Some(Latency::from_int(8)));
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn hierarchical_rejects_inverted_latencies() {
        let _ = Hierarchical::blocks(4, 2, Latency::from_int(8), Latency::TELEPHONE);
    }
}
