//! Event-driven processor programs.
//!
//! The paper stresses that all its algorithms are "practical event-driven
//! algorithms": a processor acts only when it starts (time 0) or when a
//! message arrives. [`Program`] captures exactly that interface, and is the
//! contract shared between the discrete-event engine in this crate and the
//! threaded executor in `postal-runtime` — an algorithm is written once and
//! runs on both substrates.

use crate::ids::ProcId;
use postal_model::Time;

/// The execution context handed to a program on every callback.
///
/// `send` is *send-and-forget*: it enqueues an atomic message for
/// transmission through the processor's single output port. If the program
/// issues several sends from one callback (or across callbacks faster than
/// one per time unit), they are serialized by the port at one unit each, in
/// issue order — exactly the postal-model constraint that a processor sends
/// at most one message per unit of time.
pub trait Context<P> {
    /// This processor's identifier.
    fn me(&self) -> ProcId;

    /// Total number of processors in the system.
    fn n(&self) -> usize;

    /// Current model time (the finish time of the event being handled).
    ///
    /// On the threaded runtime this is the elapsed wall-clock time
    /// converted to model units, so it is approximate there; event-driven
    /// algorithms must not make control-flow decisions on it.
    fn now(&self) -> Time;

    /// Enqueues one atomic message to `dst`.
    ///
    /// # Panics
    /// Implementations panic if `dst` is out of range or equals `me()`
    /// (the postal model has no self-sends).
    fn send(&mut self, dst: ProcId, payload: P);

    /// Requests a [`Program::on_wake`] callback at model time `t`
    /// (clamped to now if `t` is in the past).
    ///
    /// Wake-ups are a scheduling convenience, not a communication
    /// primitive: they let a program act at a precomputed time (e.g. the
    /// reversed-tree send slots of the combining algorithm) without
    /// receiving a message. The basic paper algorithms never need them.
    fn wake_at(&mut self, t: Time);
}

/// An event-driven processor program.
///
/// One instance exists per processor. The engine calls [`Program::on_start`]
/// once at time 0 and [`Program::on_receive`] at the moment each incoming
/// message has been fully received (i.e. at the end of the receive unit).
pub trait Program<P> {
    /// Called once at time 0, before any message flows.
    fn on_start(&mut self, ctx: &mut dyn Context<P>) {
        let _ = ctx;
    }

    /// Called when a message from `from` has been fully received.
    fn on_receive(&mut self, ctx: &mut dyn Context<P>, from: ProcId, payload: P);

    /// Called at a time previously requested via [`Context::wake_at`].
    fn on_wake(&mut self, ctx: &mut dyn Context<P>) {
        let _ = ctx;
    }
}

/// A program that does nothing; useful as a filler for processors that
/// only ever receive (or in tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct Idle;

impl<P> Program<P> for Idle {
    fn on_receive(&mut self, _ctx: &mut dyn Context<P>, _from: ProcId, _payload: P) {}
}

/// Builds one boxed program per processor from a closure.
pub fn programs_from<P, F>(n: usize, mut f: F) -> Vec<Box<dyn Program<P>>>
where
    F: FnMut(ProcId) -> Box<dyn Program<P>>,
{
    (0..n).map(|i| f(ProcId::from(i))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingCtx {
        sent: Vec<(ProcId, u32)>,
    }

    impl Context<u32> for CountingCtx {
        fn me(&self) -> ProcId {
            ProcId(0)
        }
        fn n(&self) -> usize {
            4
        }
        fn now(&self) -> Time {
            Time::ZERO
        }
        fn send(&mut self, dst: ProcId, payload: u32) {
            self.sent.push((dst, payload));
        }
        fn wake_at(&mut self, _t: Time) {}
    }

    #[test]
    fn idle_ignores_everything() {
        let mut ctx = CountingCtx { sent: vec![] };
        let mut p = Idle;
        Program::<u32>::on_start(&mut p, &mut ctx);
        p.on_receive(&mut ctx, ProcId(1), 42);
        assert!(ctx.sent.is_empty());
    }

    #[test]
    fn programs_from_assigns_ids_in_order() {
        let programs: Vec<Box<dyn Program<u32>>> = programs_from(3, |_id| Box::new(Idle));
        assert_eq!(programs.len(), 3);
    }
}
