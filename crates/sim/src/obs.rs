//! Bridges from simulator output to the `postal-obs` event model.
//!
//! Engines can stream events live through a [`Recorder`] (see
//! [`crate::engine::Simulation::observe`] and
//! [`crate::lockstep::run_lockstep_observed`]); this module additionally
//! converts already-collected [`Trace`]s and [`RunReport`]s into
//! [`ObsLog`]s, so callers that only kept the report — like `postal-cli
//! simulate` — can still export Chrome traces, Prometheus metrics and
//! JSONL after the fact.

use crate::engine::RunReport;
use crate::trace::Trace;
use postal_model::Latency;
use postal_obs::{MemoryRecorder, ObsEvent, ObsLog, Recorder, RunMeta};

/// Converts one trace into the equivalent event stream (one `Send` and
/// one `Recv` per transfer).
pub fn trace_events<P>(trace: &Trace<P>) -> Vec<ObsEvent> {
    let mut events = Vec::with_capacity(trace.len() * 2);
    for t in trace.transfers() {
        events.push(ObsEvent::Send {
            seq: t.seq.0,
            src: t.src.0,
            dst: t.dst.0,
            start: t.send_start,
            finish: t.send_finish,
        });
        events.push(ObsEvent::Recv {
            seq: t.seq.0,
            src: t.src.0,
            dst: t.dst.0,
            arrival: t.arrival,
            start: t.recv_start,
            finish: t.recv_finish,
            queued: t.was_queued(),
        });
    }
    events
}

/// Builds an [`ObsLog`] from a finished run report: transfers become
/// `Send`/`Recv` events and strict-mode violations become `Violation`
/// events, all in timeline order.
pub fn log_from_report<P>(
    report: &RunReport<P>,
    engine: &str,
    n: u32,
    lambda: Option<Latency>,
    messages: Option<u64>,
) -> ObsLog {
    let rec = MemoryRecorder::new();
    for e in trace_events(&report.trace) {
        rec.record(e);
    }
    for v in &report.violations {
        rec.record(ObsEvent::Violation {
            seq: v.seq.0,
            dst: v.dst.0,
            arrival: v.arrival,
            busy_until: v.port_busy_until,
        });
    }
    let mut meta = RunMeta::new(engine, n);
    meta.lambda = lambda;
    meta.messages = messages;
    rec.into_log(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency_model::Uniform;
    use crate::program::{Context, Idle, Program};
    use crate::{ProcId, Simulation};
    use postal_model::Time;

    struct Spray(Vec<u32>);
    impl Program<u8> for Spray {
        fn on_start(&mut self, ctx: &mut dyn Context<u8>) {
            for &d in &self.0 {
                ctx.send(ProcId(d), 0);
            }
        }
        fn on_receive(&mut self, _: &mut dyn Context<u8>, _: ProcId, _: u8) {}
    }

    #[test]
    fn report_converts_to_ordered_log() {
        let lam = Latency::from_ratio(5, 2);
        let model = Uniform(lam);
        let programs: Vec<Box<dyn Program<u8>>> =
            vec![Box::new(Spray(vec![1, 2])), Box::new(Idle), Box::new(Idle)];
        let report = Simulation::new(3, &model).run(programs).unwrap();
        let log = log_from_report(&report, "event", 3, Some(lam), Some(1));
        assert_eq!(log.deliveries(), 2);
        assert_eq!(log.completion_time(), report.completion);
        assert_eq!(log.events()[0].kind(), "send");
        // The realized schedule lints through to_schedule with exact times.
        let schedule = log.to_schedule().unwrap();
        assert_eq!(schedule.len(), 2);
        assert_eq!(schedule.sends()[1].send_start, Time::ONE);
    }

    #[test]
    fn violations_are_carried_into_the_log() {
        let lam = Latency::from_int(2);
        let model = Uniform(lam);
        let programs: Vec<Box<dyn Program<u8>>> = vec![
            Box::new(Spray(vec![2])),
            Box::new(Spray(vec![2])),
            Box::new(Idle),
        ];
        let report = Simulation::new(3, &model).run(programs).unwrap();
        assert_eq!(report.violations.len(), 1);
        let log = log_from_report(&report, "event", 3, Some(lam), Some(1));
        assert_eq!(log.violations(), 1);
    }
}
