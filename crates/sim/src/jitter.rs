//! Stochastic latency: bounded per-message jitter around a base λ.
//!
//! The paper assumes λ "is expected to be fairly uniform across the
//! system and not to fluctuate too much" (Section 2). This model lets
//! experiments probe that assumption: each message's latency is
//! `base + U{0, …, max_extra_ticks}/q`, drawn deterministically from a
//! seeded hash of (src, dst, send time), so runs remain exactly
//! reproducible without carrying an RNG through the engine.

use crate::ids::ProcId;
use crate::latency_model::LatencyModel;
use postal_model::{Latency, Ratio, Time};

/// A latency model with bounded, deterministic pseudo-random jitter.
///
/// ```
/// use postal_sim::{Jittered, LatencyModel, ProcId};
/// use postal_model::{Latency, Time};
///
/// let model = Jittered::new(Latency::from_int(2), 4, 42);
/// let l = model.latency(ProcId(0), ProcId(1), Time::ZERO);
/// assert!(l >= Latency::from_int(2));
/// assert!(l <= model.max_latency().unwrap());
/// // Deterministic: same inputs, same latency.
/// assert_eq!(l, model.latency(ProcId(0), ProcId(1), Time::ZERO));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Jittered {
    base: Latency,
    /// Maximum extra latency, in ticks of `1/q` where q is the base
    /// latency's tick denominator.
    max_extra_ticks: u32,
    seed: u64,
}

impl Jittered {
    /// Creates a jittered model: per-message λ in
    /// `[base, base + max_extra_ticks/q]`.
    pub fn new(base: Latency, max_extra_ticks: u32, seed: u64) -> Jittered {
        Jittered {
            base,
            max_extra_ticks,
            seed,
        }
    }

    /// The base (minimum) latency.
    pub fn base(&self) -> Latency {
        self.base
    }

    /// splitmix64: a small, well-distributed deterministic hash.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn extra_ticks(&self, src: ProcId, dst: ProcId, send_start: Time) -> u32 {
        if self.max_extra_ticks == 0 {
            return 0;
        }
        // Fold the exact send time into the hash via its reduced parts.
        let r = send_start.as_ratio();
        let h = Self::mix(
            self.seed
                ^ Self::mix((src.0 as u64) << 32 | dst.0 as u64)
                ^ Self::mix(r.numer() as u64)
                ^ Self::mix(r.denom() as u64),
        );
        (h % (self.max_extra_ticks as u64 + 1)) as u32
    }
}

impl LatencyModel for Jittered {
    fn latency(&self, src: ProcId, dst: ProcId, send_start: Time) -> Latency {
        let q = self.base.ticks_per_unit();
        let extra = Ratio::new(self.extra_ticks(src, dst, send_start) as i128, q);
        Latency::new(self.base.value() + extra).expect("base ≥ 1 and extra ≥ 0")
    }

    fn max_latency(&self) -> Option<Latency> {
        let q = self.base.ticks_per_unit();
        Some(
            Latency::new(self.base.value() + Ratio::new(self.max_extra_ticks as i128, q))
                .expect("base ≥ 1 and extra ≥ 0"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_jitter_is_uniform() {
        let m = Jittered::new(Latency::from_ratio(5, 2), 0, 42);
        for t in 0..10 {
            assert_eq!(
                m.latency(ProcId(0), ProcId(1), Time::from_int(t)),
                Latency::from_ratio(5, 2)
            );
        }
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let m = Jittered::new(Latency::from_int(2), 4, 7);
        let lo = Latency::from_int(2);
        let hi = m.max_latency().unwrap();
        let mut seen_nonbase = false;
        for t in 0..50 {
            for d in 1..5u32 {
                let l1 = m.latency(ProcId(0), ProcId(d), Time::from_int(t));
                let l2 = m.latency(ProcId(0), ProcId(d), Time::from_int(t));
                assert_eq!(l1, l2, "determinism");
                assert!(l1 >= lo && l1 <= hi, "bounds: {l1}");
                if l1 != lo {
                    seen_nonbase = true;
                }
            }
        }
        assert!(seen_nonbase, "jitter should actually vary");
    }

    #[test]
    fn different_seeds_differ() {
        let a = Jittered::new(Latency::from_int(2), 8, 1);
        let b = Jittered::new(Latency::from_int(2), 8, 2);
        let differs = (0..40).any(|t| {
            a.latency(ProcId(0), ProcId(1), Time::from_int(t))
                != b.latency(ProcId(0), ProcId(1), Time::from_int(t))
        });
        assert!(differs);
    }

    #[test]
    fn broadcast_survives_jitter_in_queued_mode() {
        use crate::engine::{PortMode, Simulation};
        use crate::program::{Context, Idle, Program};

        struct Star;
        impl Program<()> for Star {
            fn on_start(&mut self, ctx: &mut dyn Context<()>) {
                for i in 1..ctx.n() {
                    ctx.send(ProcId::from(i), ());
                }
            }
            fn on_receive(&mut self, _: &mut dyn Context<()>, _: ProcId, _: ()) {}
        }

        let model = Jittered::new(Latency::from_int(3), 6, 99);
        let mut programs: Vec<Box<dyn Program<()>>> = vec![Box::new(Star)];
        for _ in 1..8 {
            programs.push(Box::new(Idle));
        }
        let report = Simulation::new(8, &model)
            .port_mode(PortMode::Queued)
            .run(programs)
            .unwrap();
        assert_eq!(report.messages(), 7);
        // Completion within [base send window + λ_min, window + λ_max].
        assert!(report.completion >= Time::from_int(6 + 3));
        assert!(report.completion <= Time::from_int(6 + 3 + 6));
    }
}
