//! A lockstep (time-stepped) MPS(n, λ) engine.
//!
//! This is a second, structurally independent implementation of the
//! postal model: instead of an event queue it advances the clock one
//! lattice tick at a time, processing deliveries, then wake-ups, then
//! issuing sends. Its purpose is *cross-validation* — for any program
//! set whose wake-ups stay on the tick lattice (every paper algorithm),
//! [`run_lockstep`] must produce a transfer-for-transfer identical trace
//! to [`crate::engine::Simulation`]; the `tests/` suites assert exactly
//! that. Two engines agreeing by accident is far less likely than two
//! engines agreeing because both implement the model.
//!
//! Restrictions compared to the event engine: uniform latency only, and
//! strict port mode only (the paper's setting).

use crate::engine::{ProcStats, RunReport, SimError, Violation};
use crate::ids::{ProcId, SendSeq};
use crate::program::{Context, Program};
use crate::trace::{Trace, Transfer};
use postal_model::{Latency, Ratio, Time};
use postal_obs::{ObsEvent, Recorder};
use std::collections::VecDeque;

/// One pending delivery in tick units.
struct Pending<P> {
    seq: u64,
    src: ProcId,
    dst: ProcId,
    send_tick: i128,
    recv_finish_tick: i128,
    payload: P,
}

struct TickCtx<P> {
    me: ProcId,
    n: usize,
    now_tick: i128,
    q: i128,
    outbox: Vec<(ProcId, P)>,
    wakes: Vec<i128>,
}

impl<P> Context<P> for TickCtx<P> {
    fn me(&self) -> ProcId {
        self.me
    }
    fn n(&self) -> usize {
        self.n
    }
    fn now(&self) -> Time {
        Time(Ratio::new(self.now_tick, self.q))
    }
    fn send(&mut self, dst: ProcId, payload: P) {
        assert!(dst.index() < self.n, "send out of range");
        assert!(dst != self.me, "the postal model has no self-sends");
        self.outbox.push((dst, payload));
    }
    fn wake_at(&mut self, t: Time) {
        let ticks = t.as_ratio() * Ratio::from_int(self.q);
        assert!(
            ticks.is_integer(),
            "lockstep engine requires lattice wake times (got {t})"
        );
        self.wakes.push(ticks.numer().max(self.now_tick));
    }
}

/// Runs `programs` under uniform latency λ with the lockstep engine
/// (strict port mode).
///
/// ```
/// use postal_sim::lockstep::run_lockstep;
/// use postal_sim::{Context, Idle, ProcId, Program};
/// use postal_model::{Latency, Time};
///
/// struct Hello;
/// impl Program<()> for Hello {
///     fn on_start(&mut self, ctx: &mut dyn Context<()>) {
///         ctx.send(ProcId(1), ());
///     }
///     fn on_receive(&mut self, _: &mut dyn Context<()>, _: ProcId, _: ()) {}
/// }
/// let programs: Vec<Box<dyn Program<()>>> = vec![Box::new(Hello), Box::new(Idle)];
/// let report = run_lockstep(2, Latency::from_ratio(5, 2), programs, 1000).unwrap();
/// assert_eq!(report.completion, Time::new(5, 2));
/// ```
///
/// # Errors
/// [`SimError::EventLimitExceeded`] if `max_ticks` passes without
/// quiescence; [`SimError::WrongProgramCount`] on a length mismatch.
///
/// # Panics
/// Panics if a program requests an off-lattice wake-up.
pub fn run_lockstep<P: Clone>(
    n: usize,
    latency: Latency,
    programs: Vec<Box<dyn Program<P>>>,
    max_ticks: u64,
) -> Result<RunReport<P>, SimError> {
    run_lockstep_inner(n, latency, programs, max_ticks, None)
}

/// [`run_lockstep`] with every engine event additionally streamed into
/// an observability recorder (same event vocabulary as
/// [`crate::engine::Simulation::observe`]).
///
/// # Errors
/// As [`run_lockstep`].
pub fn run_lockstep_observed<P: Clone>(
    n: usize,
    latency: Latency,
    programs: Vec<Box<dyn Program<P>>>,
    max_ticks: u64,
    recorder: &dyn Recorder,
) -> Result<RunReport<P>, SimError> {
    run_lockstep_inner(n, latency, programs, max_ticks, Some(recorder))
}

fn run_lockstep_inner<P: Clone>(
    n: usize,
    latency: Latency,
    mut programs: Vec<Box<dyn Program<P>>>,
    max_ticks: u64,
    recorder: Option<&dyn Recorder>,
) -> Result<RunReport<P>, SimError> {
    if programs.len() != n {
        return Err(SimError::WrongProgramCount {
            expected: n,
            got: programs.len(),
        });
    }
    let q = latency.ticks_per_unit();
    let p = latency.lambda_ticks();

    let mut out_free = vec![0i128; n];
    let mut in_free = vec![0i128; n];
    let mut pending: VecDeque<Pending<P>> = VecDeque::new();
    let mut wakes: Vec<(i128, u64, ProcId)> = Vec::new(); // (tick, order, proc)
    let mut next_seq = 0u64;
    let mut next_wake_order = 0u64;
    let mut trace = Trace::new();
    let mut violations = Vec::new();
    let mut proc_stats = vec![ProcStats::default(); n];
    let mut events = 0u64;

    // A local helper to flush a context's effects.
    #[allow(clippy::too_many_arguments)]
    fn flush<P>(
        ctx: TickCtx<P>,
        out_free: &mut [i128],
        in_free: &mut [i128],
        pending: &mut VecDeque<Pending<P>>,
        wakes: &mut Vec<(i128, u64, ProcId)>,
        next_seq: &mut u64,
        next_wake_order: &mut u64,
        violations: &mut Vec<Violation>,
        proc_stats: &mut [ProcStats],
        q: i128,
        p: i128,
        recorder: Option<&dyn Recorder>,
    ) {
        let me = ctx.me.index();
        let now = ctx.now_tick;
        for (dst, payload) in ctx.outbox {
            let send_tick = now.max(out_free[me]);
            out_free[me] = send_tick + q;
            proc_stats[me].sends += 1;
            if let Some(r) = recorder {
                let start = Time(Ratio::new(send_tick, q));
                r.record(ObsEvent::Send {
                    seq: *next_seq,
                    src: ctx.me.0,
                    dst: dst.0,
                    start,
                    finish: start + Time::ONE,
                });
            }
            let recv_finish_tick = send_tick + p;
            // Strict-mode receive window accounting at reservation time:
            // window is (recv_finish − q, recv_finish].
            let arrival_tick = recv_finish_tick - q;
            if in_free[dst.index()] > arrival_tick {
                if let Some(r) = recorder {
                    r.record(ObsEvent::Violation {
                        seq: *next_seq,
                        dst: dst.0,
                        arrival: Time(Ratio::new(arrival_tick, q)),
                        busy_until: Time(Ratio::new(in_free[dst.index()], q)),
                    });
                }
                violations.push(Violation {
                    seq: SendSeq(*next_seq),
                    dst,
                    arrival: Time(Ratio::new(arrival_tick, q)),
                    port_busy_until: Time(Ratio::new(in_free[dst.index()], q)),
                });
            }
            in_free[dst.index()] = in_free[dst.index()].max(recv_finish_tick);
            pending.push_back(Pending {
                seq: *next_seq,
                src: ctx.me,
                dst,
                send_tick,
                recv_finish_tick,
                payload,
            });
            *next_seq += 1;
        }
        for w in ctx.wakes {
            wakes.push((w, *next_wake_order, ctx.me));
            *next_wake_order += 1;
        }
    }

    // Tick 0: on_start in index order.
    for (i, program) in programs.iter_mut().enumerate() {
        let mut ctx = TickCtx {
            me: ProcId::from(i),
            n,
            now_tick: 0,
            q,
            outbox: Vec::new(),
            wakes: Vec::new(),
        };
        program.on_start(&mut ctx);
        flush(
            ctx,
            &mut out_free,
            &mut in_free,
            &mut pending,
            &mut wakes,
            &mut next_seq,
            &mut next_wake_order,
            &mut violations,
            &mut proc_stats,
            q,
            p,
            recorder,
        );
    }

    // Start at tick 0 so wake-ups requested during on_start for time 0
    // fire at time 0, exactly as in the event engine.
    let mut tick = -1i128;
    while !pending.is_empty() || !wakes.is_empty() {
        events += 1;
        if events > max_ticks {
            if let Some(r) = recorder {
                r.record(ObsEvent::Truncated {
                    processed: events,
                    limit: max_ticks,
                    at: Time(Ratio::new(tick.max(0), q)),
                });
            }
            return Err(SimError::EventLimitExceeded { limit: max_ticks });
        }
        tick += 1;

        // 1. Deliveries landing at this tick, in issue (seq) order.
        let mut due: Vec<Pending<P>> = Vec::new();
        let mut keep: VecDeque<Pending<P>> = VecDeque::with_capacity(pending.len());
        for item in pending.drain(..) {
            if item.recv_finish_tick <= tick {
                due.push(item);
            } else {
                keep.push_back(item);
            }
        }
        pending = keep;
        due.sort_by_key(|d| (d.recv_finish_tick, d.seq));
        for d in due {
            proc_stats[d.dst.index()].recvs += 1;
            let send_start = Time(Ratio::new(d.send_tick, q));
            let recv_finish = Time(Ratio::new(d.recv_finish_tick, q));
            if let Some(r) = recorder {
                r.record(ObsEvent::Recv {
                    seq: d.seq,
                    src: d.src.0,
                    dst: d.dst.0,
                    arrival: recv_finish - Time::ONE,
                    start: recv_finish - Time::ONE,
                    finish: recv_finish,
                    queued: false,
                });
            }
            trace.push(Transfer {
                seq: SendSeq(d.seq),
                src: d.src,
                dst: d.dst,
                send_start,
                send_finish: send_start + Time::ONE,
                arrival: recv_finish - Time::ONE,
                recv_start: recv_finish - Time::ONE,
                recv_finish,
                payload: d.payload.clone(),
            });
            let mut ctx = TickCtx {
                me: d.dst,
                n,
                now_tick: d.recv_finish_tick,
                q,
                outbox: Vec::new(),
                wakes: Vec::new(),
            };
            programs[d.dst.index()].on_receive(&mut ctx, d.src, d.payload);
            flush(
                ctx,
                &mut out_free,
                &mut in_free,
                &mut pending,
                &mut wakes,
                &mut next_seq,
                &mut next_wake_order,
                &mut violations,
                &mut proc_stats,
                q,
                p,
                recorder,
            );
        }

        // 2. Wake-ups due at this tick, in request order; a wake handler
        // may schedule another wake for the same tick, so drain to a
        // fixed point (mirroring the event engine's same-time ordering).
        loop {
            let mut due_wakes: Vec<(i128, u64, ProcId)> = wakes
                .iter()
                .copied()
                .filter(|&(w, _, _)| w <= tick)
                .collect();
            if due_wakes.is_empty() {
                break;
            }
            wakes.retain(|&(w, _, _)| w > tick);
            due_wakes.sort_by_key(|&(w, order, _)| (w, order));
            for (_, _, who) in due_wakes {
                if let Some(r) = recorder {
                    r.record(ObsEvent::Wake {
                        proc: who.0,
                        at: Time(Ratio::new(tick, q)),
                    });
                }
                let mut ctx = TickCtx {
                    me: who,
                    n,
                    now_tick: tick,
                    q,
                    outbox: Vec::new(),
                    wakes: Vec::new(),
                };
                programs[who.index()].on_wake(&mut ctx);
                flush(
                    ctx,
                    &mut out_free,
                    &mut in_free,
                    &mut pending,
                    &mut wakes,
                    &mut next_seq,
                    &mut next_wake_order,
                    &mut violations,
                    &mut proc_stats,
                    q,
                    p,
                    recorder,
                );
            }
        }
    }

    Ok(RunReport {
        completion: trace.completion_time(),
        trace,
        violations,
        edge_violations: Vec::new(),
        proc_stats,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency_model::Uniform;
    use crate::program::Idle;

    struct Spray(Vec<u32>);
    impl Program<u8> for Spray {
        fn on_start(&mut self, ctx: &mut dyn Context<u8>) {
            for &d in &self.0 {
                ctx.send(ProcId(d), 0);
            }
        }
        fn on_receive(&mut self, _: &mut dyn Context<u8>, _: ProcId, _: u8) {}
    }

    fn spray(n: usize, dests: Vec<u32>) -> Vec<Box<dyn Program<u8>>> {
        let mut v: Vec<Box<dyn Program<u8>>> = vec![Box::new(Spray(dests))];
        for _ in 1..n {
            v.push(Box::new(Idle));
        }
        v
    }

    #[test]
    fn matches_event_engine_on_simple_workload() {
        let lam = Latency::from_ratio(5, 2);
        let lock = run_lockstep(4, lam, spray(4, vec![1, 2, 3]), 10_000).unwrap();
        let model = Uniform(lam);
        let event = crate::engine::Simulation::new(4, &model)
            .run(spray(4, vec![1, 2, 3]))
            .unwrap();
        assert_eq!(lock.completion, event.completion);
        assert_eq!(lock.messages(), event.messages());
        let key = |t: &Transfer<u8>| (t.src, t.dst, t.send_start, t.recv_finish);
        let mut a: Vec<_> = lock.trace.transfers().iter().map(key).collect();
        let mut b: Vec<_> = event.trace.transfers().iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn detects_violations_like_event_engine() {
        let lam = Latency::from_int(2);
        let mut programs: Vec<Box<dyn Program<u8>>> = vec![
            Box::new(Spray(vec![2])),
            Box::new(Spray(vec![2])),
            Box::new(Idle),
        ];
        // Both sends at t=0 hit p2's window.
        let report = run_lockstep(3, lam, std::mem::take(&mut programs), 1000).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].dst, ProcId(2));
    }

    #[test]
    fn observed_run_streams_matching_events() {
        let lam = Latency::from_ratio(5, 2);
        let rec = postal_obs::MemoryRecorder::new();
        let report = run_lockstep_observed(4, lam, spray(4, vec![1, 2, 3]), 10_000, &rec).unwrap();
        let log = rec.into_log(postal_obs::RunMeta::new("lockstep", 4).latency(lam));
        assert_eq!(log.deliveries(), report.messages());
        assert_eq!(log.completion_time(), report.completion);
        // Streamed events agree with converting the finished report.
        let converted = crate::obs::log_from_report(&report, "lockstep", 4, Some(lam), None);
        assert_eq!(log.events(), converted.events());
    }

    #[test]
    fn wrong_program_count() {
        let err = run_lockstep(3, Latency::TELEPHONE, spray(2, vec![1]), 100).unwrap_err();
        assert!(matches!(err, SimError::WrongProgramCount { .. }));
    }

    #[test]
    #[should_panic(expected = "lattice wake")]
    fn off_lattice_wake_panics() {
        struct BadWake;
        impl Program<u8> for BadWake {
            fn on_start(&mut self, ctx: &mut dyn Context<u8>) {
                ctx.wake_at(Time::new(1, 3)); // 1/3 unit with q = 1
            }
            fn on_receive(&mut self, _: &mut dyn Context<u8>, _: ProcId, _: u8) {}
        }
        let programs: Vec<Box<dyn Program<u8>>> = vec![Box::new(BadWake)];
        let _ = run_lockstep(1, Latency::TELEPHONE, programs, 100);
    }

    #[test]
    fn quiescent_system_terminates_immediately() {
        let programs: Vec<Box<dyn Program<u8>>> = vec![Box::new(Idle), Box::new(Idle)];
        let report = run_lockstep(2, Latency::from_int(2), programs, 100).unwrap();
        assert_eq!(report.messages(), 0);
        assert_eq!(report.completion, Time::ZERO);
    }
}
