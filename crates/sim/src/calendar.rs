//! A calendar (bucket) event queue keyed on [`FastTime`] half-units.
//!
//! The discrete-event engine's hot path is queue traffic: every message
//! costs one arrival push, one deliver push and two pops. The seed
//! engine paid `O(log n)` exact-rational comparisons per operation on a
//! [`BinaryHeap`]; this queue exploits the postal model's time structure
//! instead. Under the paper's λ grid (integers and half-integers) every
//! event time is a half-unit multiple, so [`FastTime`] holds it as a
//! plain `i64` and the queue becomes a classic calendar: a ring of
//! half-tick buckets over a sliding window `[cur, cur + W)`, with `O(1)`
//! amortized push and pop and no per-event comparisons at all.
//!
//! Two ordered heaps back the ring up without giving up exactness:
//!
//! * **overflow** — on-lattice events beyond the window (`≥ cur + W`),
//!   flushed into the ring when the window slides over them;
//! * **exact** — events whose time left the half-unit lattice (an
//!   off-lattice λ such as 7/3, or a magnitude past `FIXED_LIMIT`).
//!   These fall back to exact [`Time`] keys and full rational
//!   comparisons — the reference-identical slow path.
//!
//! Because [`FastTime`]'s representation is canonical, a fixed-point
//! time and an exact-fallback time can never denote the same instant,
//! so arbitration between the ring and the exact heap is a strict
//! comparison with no tie to break.
//!
//! # Ordering contract
//!
//! Pops come out ordered by `(time, lane, push counter)` — exactly the
//! `(time, kind_rank, counter)` order of the seed engine's heap — under
//! one precondition the engine naturally satisfies: **pushes are
//! monotone**, i.e. never earlier than the last popped time (asserted).
//! Within one bucket each lane is a FIFO [`VecDeque`], which equals
//! counter order because a bucket only receives direct pushes while its
//! tick is inside the window, and the overflow heap is drained into it
//! in counter order at the moment the window first covers that tick.

use postal_model::{FastTime, Time};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

/// Number of half-tick buckets in the ring (a power of two). 512
/// half-units = 256 time units of lookahead, far beyond any λ the
/// paper's grid uses, so overflow traffic is rare.
const WINDOW: usize = 512;

/// Same-instant event class, in drain order. Mirrors the engine's
/// `kind_rank`: port bookings first, then completed receives, then
/// timer wake-ups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    /// A message arrival (books the input port).
    Arrival = 0,
    /// A receive completing (delivers the payload).
    Deliver = 1,
    /// A timer wake-up.
    Wake = 2,
}

impl Lane {
    fn index(self) -> usize {
        self as usize
    }
}

/// One ring slot: three FIFO lanes, one per event class. The deques are
/// the queue's arena — buckets are drained and refilled as the window
/// slides, so their capacity is recycled instead of reallocated.
#[derive(Debug)]
struct Bucket<T> {
    lanes: [VecDeque<T>; 3],
}

impl<T> Bucket<T> {
    fn new() -> Bucket<T> {
        Bucket {
            lanes: std::array::from_fn(|_| VecDeque::new()),
        }
    }

    fn is_empty(&self) -> bool {
        self.lanes.iter().all(VecDeque::is_empty)
    }
}

/// A heap entry for the overflow and exact fallbacks, ordered by
/// `(key, lane, counter)` — the global event order restricted to the
/// events that left the ring.
#[derive(Debug)]
struct Keyed<K, T> {
    key: K,
    lane: Lane,
    counter: u64,
    item: T,
}

impl<K: Ord, T> PartialEq for Keyed<K, T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<K: Ord, T> Eq for Keyed<K, T> {}
impl<K: Ord, T> PartialOrd for Keyed<K, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, T> Ord for Keyed<K, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (&self.key, self.lane, self.counter).cmp(&(&other.key, other.lane, other.counter))
    }
}

/// The calendar queue. See the module docs for the design and the
/// ordering contract.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    buckets: Vec<Bucket<T>>,
    /// Half-tick index of the window start; bucket for tick `h` is
    /// `buckets[h & mask]`.
    cur: i64,
    /// Items currently in the ring (fast membership test for pop).
    ring_len: usize,
    /// On-lattice events at ticks `≥ cur + WINDOW`.
    overflow: BinaryHeap<Reverse<Keyed<i64, T>>>,
    /// Off-lattice (or out-of-range) events, under exact rational order.
    exact: BinaryHeap<Reverse<Keyed<Time, T>>>,
    /// Next push counter — the global tie-break of the seed heap.
    counter: u64,
    /// Total queued items.
    len: usize,
    /// The monotone floor: no push may be earlier than this.
    frontier: FastTime,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue with its window starting at time zero.
    pub fn new() -> CalendarQueue<T> {
        CalendarQueue {
            buckets: (0..WINDOW).map(|_| Bucket::new()).collect(),
            cur: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            exact: BinaryHeap::new(),
            counter: 0,
            len: 0,
            frontier: FastTime::ZERO,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues `item` at `time` in `lane`.
    ///
    /// # Panics
    /// Panics if `time` precedes the last popped time (the queue is
    /// monotone; a discrete-event engine never schedules into the past).
    pub fn push(&mut self, time: FastTime, lane: Lane, item: T) {
        assert!(
            time >= self.frontier,
            "calendar queue is monotone: push at {:?} precedes frontier {:?}",
            time.to_time(),
            self.frontier.to_time(),
        );
        let counter = self.counter;
        self.counter += 1;
        self.len += 1;
        match time.as_half_units() {
            Some(h) if h < self.cur + WINDOW as i64 => {
                debug_assert!(h >= self.cur, "monotone push below the window start");
                self.buckets[(h & (WINDOW as i64 - 1)) as usize].lanes[lane.index()]
                    .push_back(item);
                self.ring_len += 1;
            }
            Some(h) => self.overflow.push(Reverse(Keyed {
                key: h,
                lane,
                counter,
                item,
            })),
            None => self.exact.push(Reverse(Keyed {
                key: time.to_time(),
                lane,
                counter,
                item,
            })),
        }
    }

    /// Dequeues the earliest event under `(time, lane, counter)` order.
    pub fn pop(&mut self) -> Option<(FastTime, Lane, T)> {
        // The next on-lattice tick: the first nonempty bucket when the
        // ring holds anything (the ring always precedes the overflow,
        // whose keys are ≥ cur + WINDOW), else the overflow head.
        let cal_tick = if self.ring_len > 0 {
            let mut h = self.cur;
            while self.buckets[(h & (WINDOW as i64 - 1)) as usize].is_empty() {
                h += 1;
            }
            Some(h)
        } else {
            self.overflow.peek().map(|Reverse(k)| k.key)
        };
        let exact_first = match (cal_tick, self.exact.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            // Canonical representations make a tie impossible; strict
            // comparison is exact arbitration.
            (Some(h), Some(Reverse(k))) => k.key < Time::from_half_units(h),
        };
        self.len -= 1;
        if exact_first {
            // Note: `cur` does not advance — a later on-lattice push
            // between `cur` and this exact time must still find its
            // bucket inside the window.
            let Reverse(k) = self.exact.pop().expect("peeked");
            self.frontier = FastTime::from_time(k.key);
            return Some((self.frontier, k.lane, k.item));
        }
        let tick = cal_tick.expect("calendar side was chosen");
        if tick != self.cur {
            self.advance_to(tick);
        }
        let bucket = &mut self.buckets[(tick & (WINDOW as i64 - 1)) as usize];
        for (i, lane) in [Lane::Arrival, Lane::Deliver, Lane::Wake]
            .into_iter()
            .enumerate()
        {
            if let Some(item) = bucket.lanes[i].pop_front() {
                self.ring_len -= 1;
                self.frontier = FastTime::from_half_units(tick);
                return Some((self.frontier, lane, item));
            }
        }
        unreachable!("a nonempty or overflow-fed bucket was selected")
    }

    /// Slides the window start to `tick` and drains every overflow
    /// entry the window now covers into its bucket. Draining in heap
    /// order keeps each bucket lane's FIFO equal to counter order.
    fn advance_to(&mut self, tick: i64) {
        self.cur = tick;
        let horizon = tick + WINDOW as i64;
        while let Some(Reverse(k)) = self.overflow.peek() {
            if k.key >= horizon {
                break;
            }
            let Reverse(k) = self.overflow.pop().expect("peeked");
            self.buckets[(k.key & (WINDOW as i64 - 1)) as usize].lanes[k.lane.index()]
                .push_back(k.item);
            self.ring_len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft(h: i64) -> FastTime {
        FastTime::from_half_units(h)
    }

    #[test]
    fn pops_in_time_lane_counter_order() {
        let mut q = CalendarQueue::new();
        q.push(ft(4), Lane::Wake, "w2");
        q.push(ft(2), Lane::Deliver, "d1");
        q.push(ft(2), Lane::Arrival, "a1");
        q.push(ft(2), Lane::Arrival, "a2");
        q.push(ft(4), Lane::Arrival, "a3");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, x)| x)).collect();
        assert_eq!(order, vec!["a1", "a2", "d1", "a3", "w2"]);
    }

    #[test]
    fn same_tick_push_during_drain_is_seen_before_later_lanes() {
        // A heap pops an arrival pushed mid-drain before the remaining
        // delivers of the same tick; the ring must do the same.
        let mut q = CalendarQueue::new();
        q.push(ft(2), Lane::Deliver, "d1");
        q.push(ft(2), Lane::Deliver, "d2");
        let (t, lane, x) = q.pop().unwrap();
        assert_eq!((t, lane, x), (ft(2), Lane::Deliver, "d1"));
        q.push(ft(2), Lane::Arrival, "a-late");
        assert_eq!(q.pop().unwrap().2, "a-late");
        assert_eq!(q.pop().unwrap().2, "d2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_flushes_into_the_window_in_counter_order() {
        let far = WINDOW as i64 + 10;
        let mut q = CalendarQueue::new();
        q.push(ft(far), Lane::Deliver, 0u32);
        q.push(ft(far), Lane::Deliver, 1);
        q.push(ft(1), Lane::Deliver, 2);
        assert_eq!(q.pop().unwrap().2, 2);
        // Window slides to `far`; both overflow entries must come out
        // FIFO, and a direct push lands after them.
        assert_eq!(q.pop().unwrap(), (ft(far), Lane::Deliver, 0));
        q.push(ft(far), Lane::Deliver, 3);
        assert_eq!(q.pop().unwrap().2, 1);
        assert_eq!(q.pop().unwrap().2, 3);
    }

    #[test]
    fn exact_fallback_interleaves_with_the_ring() {
        // 7/3 lies off the half-unit lattice → exact heap; it must pop
        // between ticks 2 (h=4) and 5/2 (h=5).
        let third = FastTime::from_time(Time::new(7, 3));
        assert!(third.as_half_units().is_none());
        let mut q = CalendarQueue::new();
        q.push(ft(5), Lane::Arrival, "half");
        q.push(third, Lane::Arrival, "third");
        q.push(ft(4), Lane::Arrival, "two");
        assert_eq!(q.pop().unwrap().2, "two");
        let (t, _, x) = q.pop().unwrap();
        assert_eq!(x, "third");
        assert_eq!(t.to_time(), Time::new(7, 3));
        assert_eq!(q.pop().unwrap().2, "half");
    }

    #[test]
    fn exact_pop_does_not_strand_later_lattice_pushes() {
        let third = FastTime::from_time(Time::new(7, 3));
        let mut q = CalendarQueue::new();
        q.push(third, Lane::Wake, "third");
        assert_eq!(q.pop().unwrap().2, "third");
        // The window start stayed at 0; a push at tick 3 must still be
        // routable and popped.
        q.push(ft(6), Lane::Wake, "three");
        assert_eq!(q.pop().unwrap().2, "three");
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn push_into_the_past_panics() {
        let mut q = CalendarQueue::new();
        q.push(ft(10), Lane::Wake, ());
        let _ = q.pop();
        q.push(ft(4), Lane::Wake, ());
    }

    #[test]
    fn len_tracks_all_three_structures() {
        let mut q: CalendarQueue<u8> = CalendarQueue::new();
        assert!(q.is_empty());
        q.push(ft(0), Lane::Arrival, 0);
        q.push(ft(WINDOW as i64 * 3), Lane::Arrival, 1);
        q.push(FastTime::from_time(Time::new(1, 3)), Lane::Arrival, 2);
        assert_eq!(q.len(), 3);
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert!(q.is_empty());
    }
}
