//! Execution traces: every message transfer with its exact timing.

use crate::ids::{ProcId, SendSeq};
use postal_model::schedule::{Schedule, TimedSend};
use postal_model::{Latency, Time};
use postal_obs::{PortSide, PortSpan};

/// One completed message transfer.
///
/// In the postal model a transfer sent at `s` occupies the sender during
/// `[s, s+1]` and the receiver during `[s+λ−1, s+λ]`. In queued-port mode
/// the receive interval may start later than `s+λ−1`; both the model
/// arrival time and the actual receive interval are recorded.
#[derive(Debug, Clone)]
pub struct Transfer<P> {
    /// Global issue-order sequence number.
    pub seq: SendSeq,
    /// Sending processor.
    pub src: ProcId,
    /// Receiving processor.
    pub dst: ProcId,
    /// When the sender's output port started transmitting (the model `t`).
    pub send_start: Time,
    /// `send_start + 1`: when the sender's port became free again.
    pub send_finish: Time,
    /// `send_start + λ − 1`: when the message was ready at the receiver.
    pub arrival: Time,
    /// When the receiver's input port actually started receiving.
    pub recv_start: Time,
    /// `recv_start + 1`: when the payload was delivered to the program.
    pub recv_finish: Time,
    /// The payload carried.
    pub payload: P,
}

impl<P> Transfer<P> {
    /// Whether the receive was delayed past the model arrival time by
    /// input-port contention (only possible in queued-port mode).
    pub fn was_queued(&self) -> bool {
        self.recv_start > self.arrival
    }
}

/// The full, deterministic record of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct Trace<P> {
    transfers: Vec<Transfer<P>>,
}

impl<P> Trace<P> {
    /// Creates an empty trace.
    pub fn new() -> Trace<P> {
        Trace {
            transfers: Vec::new(),
        }
    }

    /// Appends a transfer (engine-internal).
    pub(crate) fn push(&mut self, t: Transfer<P>) {
        self.transfers.push(t);
    }

    /// All transfers, in receive-completion order.
    pub fn transfers(&self) -> &[Transfer<P>] {
        &self.transfers
    }

    /// Number of message transfers.
    pub fn len(&self) -> usize {
        self.transfers.len()
    }

    /// Whether no message was transferred.
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }

    /// Time at which the last receive finished (`Time::ZERO` when no
    /// message flowed). This is the paper's running time: "the arrival
    /// time of the last message to the last processor".
    pub fn completion_time(&self) -> Time {
        self.transfers
            .iter()
            .map(|t| t.recv_finish)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Extracts the static [`Schedule`] this trace realized, so the
    /// lint engine can check an *execution* by the same rules as a
    /// hand-written schedule. `n` and `latency` are the run's
    /// parameters (a trace does not carry them).
    pub fn to_schedule(&self, n: u32, latency: Latency) -> Schedule {
        let sends = self
            .transfers
            .iter()
            .map(|t| TimedSend {
                src: t.src.0,
                dst: t.dst.0,
                send_start: t.send_start,
            })
            .collect();
        Schedule::new(n, latency, sends)
    }

    /// Transfers received by one processor, in receive order.
    pub fn received_by(&self, p: ProcId) -> impl Iterator<Item = &Transfer<P>> {
        self.transfers.iter().filter(move |t| t.dst == p)
    }

    /// Transfers sent by one processor, in send order.
    pub fn sent_by(&self, p: ProcId) -> Vec<&Transfer<P>> {
        let mut v: Vec<&Transfer<P>> = self.transfers.iter().filter(|t| t.src == p).collect();
        v.sort_by_key(|t| (t.send_start, t.seq));
        v
    }

    /// The time each processor first finished receiving any message, or
    /// `None` if it never received one. Index 0 (the originator) is `None`
    /// unless someone sent to it.
    pub fn first_receipt_times(&self, n: usize) -> Vec<Option<Time>> {
        let mut v = vec![None; n];
        for t in &self.transfers {
            let slot = &mut v[t.dst.index()];
            match slot {
                None => *slot = Some(t.recv_finish),
                Some(existing) if t.recv_finish < *existing => *slot = Some(t.recv_finish),
                _ => {}
            }
        }
        v
    }

    /// The port-occupancy intervals this trace realized, in transfer
    /// order — the span stream the obs Gantt renderer and utilization
    /// accounting consume.
    pub fn port_spans(&self) -> Vec<PortSpan> {
        let mut spans = Vec::with_capacity(self.transfers.len() * 2);
        for t in &self.transfers {
            spans.push(PortSpan {
                proc: t.src.0,
                side: PortSide::Out,
                start: t.send_start,
                end: t.send_finish,
            });
            spans.push(PortSpan {
                proc: t.dst.0,
                side: PortSide::In,
                start: t.recv_start,
                end: t.recv_finish,
            });
        }
        spans
    }

    /// Per-processor port utilization: `(send_busy, recv_busy)` time for
    /// each processor. Dividing by the completion time gives utilization
    /// fractions (the busiest processor in an optimal broadcast — the
    /// originator — sends for `k` consecutive units, its whole
    /// participation). Delegates to [`postal_obs::port_busy_times`], the
    /// workspace's single definition of port busy time.
    pub fn port_busy_times(&self, n: usize) -> Vec<(Time, Time)> {
        postal_obs::port_busy_times(n, &self.port_spans())
    }

    /// Exports the trace as CSV (timing columns as exact rationals plus
    /// decimal approximations; payloads via the supplied formatter).
    ///
    /// Columns: `seq,src,dst,send_start,arrival,recv_start,recv_finish,
    /// recv_finish_f64,queued,payload`.
    pub fn to_csv<F>(&self, mut payload_fmt: F) -> String
    where
        F: FnMut(&P) -> String,
    {
        let mut out = String::from(
            "seq,src,dst,send_start,arrival,recv_start,recv_finish,recv_finish_f64,queued,payload\n",
        );
        for t in &self.transfers {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{:.6},{},{}\n",
                t.seq.0,
                t.src.0,
                t.dst.0,
                t.send_start,
                t.arrival,
                t.recv_start,
                t.recv_finish,
                t.recv_finish.to_f64(),
                t.was_queued(),
                payload_fmt(&t.payload),
            ));
        }
        out
    }

    /// Checks per-destination order preservation with respect to a key
    /// extracted from each payload: for every processor, the sequence of
    /// keys of its received messages (in receive order) must be
    /// nondecreasing. Returns the first violating destination.
    ///
    /// This is the paper's "order of messages is preserved" property with
    /// the key being the message index `M_1 … M_m`.
    pub fn check_order_preserving<K, F>(&self, n: usize, mut key: F) -> Result<(), ProcId>
    where
        K: PartialOrd,
        F: FnMut(&P) -> Option<K>,
    {
        for i in 0..n {
            let p = ProcId::from(i);
            let mut last: Option<K> = None;
            for t in self.received_by(p) {
                if let Some(k) = key(&t.payload) {
                    if let Some(prev) = &last {
                        if *prev > k {
                            return Err(p);
                        }
                    }
                    last = Some(k);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(seq: u64, src: u32, dst: u32, send: i128, lam_num: i128, lam_den: i128) -> Transfer<u32> {
        let send_start = Time::from_int(send);
        let arrival = send_start + Time::new(lam_num, lam_den) - Time::ONE;
        Transfer {
            seq: SendSeq(seq),
            src: ProcId(src),
            dst: ProcId(dst),
            send_start,
            send_finish: send_start + Time::ONE,
            arrival,
            recv_start: arrival,
            recv_finish: arrival + Time::ONE,
            payload: seq as u32,
        }
    }

    #[test]
    fn empty_trace_completes_at_zero() {
        let tr: Trace<u32> = Trace::new();
        assert!(tr.is_empty());
        assert_eq!(tr.completion_time(), Time::ZERO);
    }

    #[test]
    fn completion_is_last_recv_finish() {
        let mut tr = Trace::new();
        tr.push(t(0, 0, 1, 0, 5, 2));
        tr.push(t(1, 0, 2, 1, 5, 2));
        assert_eq!(tr.len(), 2);
        // Second send starts at 1, arrives at 1 + 5/2 = 7/2.
        assert_eq!(tr.completion_time(), Time::new(7, 2));
    }

    #[test]
    fn received_and_sent_by() {
        let mut tr = Trace::new();
        tr.push(t(0, 0, 1, 0, 2, 1));
        tr.push(t(1, 0, 2, 1, 2, 1));
        tr.push(t(2, 1, 2, 2, 2, 1));
        assert_eq!(tr.received_by(ProcId(2)).count(), 2);
        assert_eq!(tr.sent_by(ProcId(0)).len(), 2);
        assert_eq!(tr.sent_by(ProcId(2)).len(), 0);
    }

    #[test]
    fn first_receipt_times() {
        let mut tr = Trace::new();
        tr.push(t(0, 0, 1, 0, 2, 1));
        tr.push(t(1, 2, 1, 0, 2, 1)); // also to p1, same timing
        let first = tr.first_receipt_times(3);
        assert_eq!(first[0], None);
        assert_eq!(first[1], Some(Time::from_int(2)));
        assert_eq!(first[2], None);
    }

    #[test]
    fn order_preservation_check() {
        let mut tr = Trace::new();
        tr.push(t(0, 0, 1, 0, 2, 1)); // payload key 0
        tr.push(t(1, 0, 1, 1, 2, 1)); // payload key 1, received later: ok
        assert!(tr.check_order_preserving(2, |p| Some(*p)).is_ok());

        // Inject an out-of-order receipt: key 5 then key 1.
        let mut bad = Trace::new();
        bad.push(t(5, 0, 1, 0, 2, 1));
        bad.push(t(1, 0, 1, 1, 2, 1));
        assert_eq!(bad.check_order_preserving(2, |p| Some(*p)), Err(ProcId(1)));
    }

    #[test]
    fn port_busy_times() {
        let mut tr = Trace::new();
        tr.push(t(0, 0, 1, 0, 2, 1));
        tr.push(t(1, 0, 2, 1, 2, 1));
        tr.push(t(2, 1, 2, 2, 2, 1));
        let busy = tr.port_busy_times(3);
        assert_eq!(busy[0], (Time::from_int(2), Time::ZERO));
        assert_eq!(busy[1], (Time::ONE, Time::ONE));
        assert_eq!(busy[2], (Time::ZERO, Time::from_int(2)));
    }

    #[test]
    fn csv_export() {
        let mut tr = Trace::new();
        tr.push(t(0, 0, 1, 0, 5, 2));
        tr.push(t(1, 0, 2, 1, 5, 2));
        let csv = tr.to_csv(|p| format!("m{p}"));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("seq,src,dst,"));
        assert!(lines[1].contains(",5/2,"), "{}", lines[1]);
        assert!(lines[1].ends_with(",false,m0"));
        assert!(lines[2].contains("3.500000"));
    }

    #[test]
    fn queued_detection() {
        let mut x = t(0, 0, 1, 0, 3, 1);
        assert!(!x.was_queued());
        x.recv_start = x.arrival + Time::ONE;
        assert!(x.was_queued());
    }
}
