//! Property-based tests of the discrete-event engine's invariants under
//! randomized workloads.

use postal_model::{Latency, Time};
use postal_sim::prelude::*;
use proptest::prelude::*;

/// A workload: initial sends per processor, plus per-processor forward
/// targets (every received message is forwarded there, a bounded number
/// of times, so runs always terminate).
#[derive(Debug, Clone)]
struct Workload {
    n: usize,
    initial: Vec<(u32, u32)>,
    forward: Vec<Option<u32>>,
    forward_budget: u8,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (2usize..10).prop_flat_map(|n| {
        let initial = proptest::collection::vec(
            (0u32..n as u32, 0u32..n as u32).prop_filter("no self sends", |(a, b)| a != b),
            0..12,
        );
        let forward = proptest::collection::vec(proptest::option::of(0u32..n as u32), n..=n);
        (initial, forward, 1u8..4).prop_map(move |(initial, forward, forward_budget)| Workload {
            n,
            initial,
            forward,
            forward_budget,
        })
    })
}

struct WlProgram {
    initial: Vec<u32>,
    forward: Option<u32>,
    budget: u8,
    me: u32,
}

impl Program<u8> for WlProgram {
    fn on_start(&mut self, ctx: &mut dyn Context<u8>) {
        for &d in &self.initial {
            ctx.send(ProcId(d), 0);
        }
    }
    fn on_receive(&mut self, ctx: &mut dyn Context<u8>, _from: ProcId, hops: u8) {
        if hops < self.budget {
            if let Some(f) = self.forward {
                if f != self.me {
                    ctx.send(ProcId(f), hops + 1);
                }
            }
        }
    }
}

fn programs_for(w: &Workload) -> Vec<Box<dyn Program<u8>>> {
    (0..w.n)
        .map(|i| {
            Box::new(WlProgram {
                initial: w
                    .initial
                    .iter()
                    .filter(|&&(s, _)| s as usize == i)
                    .map(|&(_, d)| d)
                    .collect(),
                forward: w.forward[i],
                budget: w.forward_budget,
                me: i as u32,
            }) as Box<dyn Program<u8>>
        })
        .collect()
}

fn arb_latency() -> impl Strategy<Value = Latency> {
    (1i128..=4, 1i128..=5).prop_map(|(q, mult)| Latency::from_ratio(q * mult, q))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_invariants_hold(w in arb_workload(), lam in arb_latency(),
                              queued in any::<bool>()) {
        let model = Uniform(lam);
        let mode = if queued { PortMode::Queued } else { PortMode::Strict };
        let report = Simulation::new(w.n, &model)
            .port_mode(mode)
            .run(programs_for(&w))
            .unwrap();

        // Output ports: per-processor send starts ≥ 1 unit apart.
        for p in 0..w.n {
            let sends = report.trace.sent_by(ProcId::from(p));
            for pair in sends.windows(2) {
                prop_assert!(
                    pair[1].send_start >= pair[0].send_start + Time::ONE,
                    "output port overlap at p{p}"
                );
            }
        }

        // Every transfer satisfies the uniform-λ timing identities.
        for t in report.trace.transfers() {
            prop_assert_eq!(t.send_finish, t.send_start + Time::ONE);
            prop_assert_eq!(t.arrival, t.send_start + lam.as_time() - Time::ONE);
            prop_assert_eq!(t.recv_finish, t.recv_start + Time::ONE);
            prop_assert!(t.recv_start >= t.arrival);
            if !queued {
                // Strict mode never shifts timing.
                prop_assert_eq!(t.recv_start, t.arrival);
            }
        }

        // Queued mode: input port serialized, no violations reported.
        if queued {
            prop_assert!(report.violations.is_empty());
            for p in 0..w.n {
                let mut finishes: Vec<Time> = report
                    .trace
                    .received_by(ProcId::from(p))
                    .map(|t| t.recv_finish)
                    .collect();
                finishes.sort();
                for pair in finishes.windows(2) {
                    prop_assert!(
                        pair[1] >= pair[0] + Time::ONE,
                        "input port overlap at p{p} in queued mode"
                    );
                }
            }
        } else {
            // Strict mode: a violation is reported iff two receive
            // windows at a destination actually overlap.
            for p in 0..w.n {
                let mut finishes: Vec<Time> = report
                    .trace
                    .received_by(ProcId::from(p))
                    .map(|t| t.recv_finish)
                    .collect();
                finishes.sort();
                let overlaps = finishes
                    .windows(2)
                    .filter(|w| w[1] < w[0] + Time::ONE)
                    .count();
                let reported = report
                    .violations
                    .iter()
                    .filter(|v| v.dst == ProcId::from(p))
                    .count();
                prop_assert_eq!(overlaps, reported, "violation accounting at p{}", p);
            }
        }
    }

    #[test]
    fn engine_is_deterministic(w in arb_workload(), lam in arb_latency()) {
        let model = Uniform(lam);
        let run = || {
            let r = Simulation::new(w.n, &model).run(programs_for(&w)).unwrap();
            r.trace
                .transfers()
                .iter()
                .map(|t| (t.src.0, t.dst.0, t.send_start, t.recv_finish))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn queued_never_completes_before_strict(w in arb_workload(), lam in arb_latency()) {
        let model = Uniform(lam);
        let strict = Simulation::new(w.n, &model).run(programs_for(&w)).unwrap();
        let queued = Simulation::new(w.n, &model)
            .port_mode(PortMode::Queued)
            .run(programs_for(&w))
            .unwrap();
        // Delaying receives can only push work later.
        prop_assert!(queued.completion >= strict.completion);
        // Same number of messages either way... queued-mode delays can
        // change *when* forwards happen but not message counts, because
        // forwarding is purely payload-driven.
        prop_assert_eq!(queued.messages(), strict.messages());
    }
}
