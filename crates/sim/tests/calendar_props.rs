//! Property tests pinning [`CalendarQueue`] to a binary-heap oracle.
//!
//! The oracle is the seed engine's priority structure: a
//! `BinaryHeap` ordered by exact `(Time, lane, push counter)`. The
//! calendar queue must pop the *same payloads in the same order* for
//! any monotone push/pop interleaving — including same-timestamp
//! bursts (tie-breaking by lane, then push order), pushes beyond the
//! ring window (overflow heap), and off-lattice times (exact-`Ratio`
//! fallback interleaved with the fixed-point ring).

use postal_model::{FastTime, Time};
use postal_sim::{CalendarQueue, Lane};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

fn lane_of(code: u8) -> Lane {
    match code % 3 {
        0 => Lane::Arrival,
        1 => Lane::Deliver,
        _ => Lane::Wake,
    }
}

/// One generated operation: `kind == 0` pops, anything else pushes at
/// `frontier + delta`, where the delta mixes half-units (on-lattice)
/// and thirds (off-lattice, forcing the exact fallback).
type Op = (u8, u16, u8, u8);

/// Replays `ops` against both structures and asserts every pop agrees.
///
/// Pushes are offsets from the pop frontier, so the calendar queue's
/// monotonicity contract holds by construction — exactly how the
/// engine uses it.
fn replay(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut queue: CalendarQueue<u64> = CalendarQueue::new();
    let mut oracle: BinaryHeap<Reverse<(Time, Lane, u64)>> = BinaryHeap::new();
    let mut payload_of_counter: Vec<u64> = Vec::new();
    let mut frontier = Time::ZERO;
    let mut counter = 0u64;
    let mut next_payload = 0u64;

    for &(kind, delta, lane_code, third) in ops {
        if kind == 0 {
            let got = queue.pop();
            let want = oracle.pop();
            match (got, want) {
                (None, None) => {}
                (Some((ft, lane, item)), Some(Reverse((t, olane, ocounter)))) => {
                    prop_assert_eq!(ft.to_time(), t, "pop time diverged from oracle");
                    prop_assert_eq!(lane, olane, "pop lane diverged from oracle");
                    prop_assert_eq!(
                        item,
                        payload_of_counter[ocounter as usize],
                        "pop payload diverged from oracle"
                    );
                    frontier = t;
                }
                (g, w) => {
                    return Err(TestCaseError::fail(format!(
                        "emptiness diverged: queue {g:?}, oracle {w:?}"
                    )))
                }
            }
        } else {
            // Bias the deltas: kind 1 clusters events on the same few
            // instants (ties), kind 2 reaches past the ring window
            // (overflow), kind 3 stays mid-window.
            let half = match kind {
                1 => (delta % 4) as i128,
                2 => delta as i128,
                _ => (delta % 64) as i128,
            };
            let t = frontier + Time::new(half, 2) + Time::new((third % 3) as i128, 3);
            let lane = lane_of(lane_code);
            queue.push(FastTime::from_time(t), lane, next_payload);
            oracle.push(Reverse((t, lane, counter)));
            payload_of_counter.push(next_payload);
            counter += 1;
            next_payload += 1;
        }
        prop_assert_eq!(queue.len(), oracle.len(), "lengths diverged");
    }

    // Drain the remainder: the full pop order must match.
    while let Some(Reverse((t, olane, ocounter))) = oracle.pop() {
        let (ft, lane, item) = match queue.pop() {
            Some(x) => x,
            None => return Err(TestCaseError::fail("queue drained before oracle")),
        };
        prop_assert_eq!(ft.to_time(), t, "drain time diverged");
        prop_assert_eq!(lane, olane, "drain lane diverged");
        prop_assert_eq!(
            item,
            payload_of_counter[ocounter as usize],
            "drain payload diverged"
        );
    }
    prop_assert!(queue.pop().is_none(), "queue longer than oracle");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary monotone interleavings, mixing ties, window overflow,
    /// and off-lattice thirds.
    #[test]
    fn matches_heap_oracle(ops in proptest::collection::vec((0u8..4, 0u16..600, 0u8..3, 0u8..3), 1..120)) {
        replay(&ops)?;
    }

    /// Everything at one instant: order must reduce to (lane, push
    /// order) exactly as the heap's `(time, kind_rank, counter)` key
    /// does.
    #[test]
    fn same_timestamp_bursts_break_ties_like_the_heap(
        lanes in proptest::collection::vec(0u8..3, 1..40),
    ) {
        let ops: Vec<Op> = lanes
            .iter()
            .map(|&l| (1u8, 0u16, l, 0u8))
            .chain(lanes.iter().map(|_| (0u8, 0, 0, 0)))
            .collect();
        replay(&ops)?;
    }

    /// Purely off-lattice times (thirds): the calendar ring never
    /// fires, every event rides the exact fallback, and order still
    /// matches the oracle.
    #[test]
    fn off_lattice_streams_use_the_exact_fallback(
        ops in proptest::collection::vec((0u8..2, 0u16..30, 0u8..3), 1..80),
    ) {
        let ops: Vec<Op> = ops
            .into_iter()
            .map(|(kind, delta, lane)| (kind, delta, lane, 1 + (delta % 2) as u8))
            .collect();
        replay(&ops)?;
    }

    /// Far-future pushes land in the overflow heap and must flush back
    /// into the ring in push order as the window slides over them.
    #[test]
    fn window_overflow_preserves_order(
        deltas in proptest::collection::vec(0u16..2000, 1..60),
    ) {
        let ops: Vec<Op> = deltas
            .iter()
            .map(|&d| (2u8, d.min(599), (d % 3) as u8, 0u8))
            .chain(deltas.iter().map(|_| (0u8, 0, 0, 0)))
            .collect();
        replay(&ops)?;
    }
}
