//! Quickstart: the paper's running example, end to end.
//!
//! Builds the optimal broadcast tree for 14 processors at latency
//! λ = 5/2 (the paper's Figure 1), verifies Theorem 6 by simulation, and
//! prints the tree.
//!
//! Run with: `cargo run --example quickstart`

use postal::algos::{run_bcast, BroadcastTree};
use postal::model::{runtimes, Latency, Time};

fn main() {
    // λ is exact: 5/2, not 2.5000000000000004.
    let lambda = Latency::from_ratio(5, 2);
    let n = 14;

    // 1. The closed form: Theorem 6 says broadcasting to n processors
    //    takes exactly f_λ(n) time, and nothing can do better.
    let optimal = runtimes::bcast_time(n as u128, lambda);
    println!("Optimal broadcast time for MPS({n}, {lambda}): {optimal} units");
    assert_eq!(optimal, Time::new(15, 2));

    // 2. The broadcast tree (the paper's Figure 1).
    let tree = BroadcastTree::build(n as u64, lambda);
    println!("\nGeneralized Fibonacci broadcast tree:\n{}", tree.render());

    // 3. The event-driven algorithm, executed on the discrete-event
    //    simulator. Completion matches the closed form *exactly*, and the
    //    run respects the postal model's port semantics (no overlapping
    //    receives).
    let report = run_bcast(n, lambda);
    report.assert_model_clean();
    assert_eq!(report.completion, optimal);
    println!(
        "Simulated: {} messages, completion at t = {} — matches f_λ({n}) exactly.",
        report.messages(),
        report.completion
    );
}
