//! Threaded demo: the same event-driven programs on real OS threads.
//!
//! `postal-sim` proves the algorithms' exact model times; this example
//! runs the *identical* program objects on `postal-runtime`'s threaded
//! substrate (channels + wall-clock latency injection) and shows that
//! wall time tracks the model prediction.
//!
//! Run with: `cargo run --example threaded_demo`

use postal::algos::bcast::{BcastPayload, BcastProgram};
use postal::algos::repeat::{Pacing, RepeatProgram};
use postal::algos::MultiPacket;
use postal::model::{runtimes, Latency};
use postal::runtime::{run_threaded, send_programs_from, RuntimeConfig};
use postal::sim::{ProcId, Program};
use std::time::Duration;

fn main() {
    let lambda = Latency::from_ratio(5, 2);
    let n = 14;
    let config = RuntimeConfig {
        unit: Duration::from_millis(5),
    };

    // --- Single-message BCAST on threads ---
    let programs = send_programs_from(n, |id| {
        Box::new(BcastProgram::new(
            lambda,
            (id == ProcId::ROOT).then_some(n as u64),
        )) as Box<dyn Program<BcastPayload> + Send>
    });
    let model_time = runtimes::bcast_time(n as u128, lambda);
    println!(
        "BCAST on {n} threads at λ = {lambda} (1 unit = {:?})",
        config.unit
    );
    let report = run_threaded(lambda, config, programs);
    println!(
        "  deliveries: {}   model prediction: {} units   measured: {:.2} units",
        report.deliveries.len(),
        model_time,
        report.elapsed_units
    );
    assert_eq!(report.deliveries.len(), n - 1);

    // --- Multi-message REPEAT on threads, order preserved ---
    let m = 4u32;
    let programs = send_programs_from(n, |id| {
        Box::new(RepeatProgram::new(
            lambda,
            Pacing::Greedy,
            (id == ProcId::ROOT).then_some((n as u64, m)),
        )) as Box<dyn Program<MultiPacket> + Send>
    });
    println!("\nREPEAT (greedy) broadcasting {m} messages on {n} threads");
    let report = run_threaded(lambda, config, programs);
    println!(
        "  deliveries: {}   measured: {:.2} units",
        report.deliveries.len(),
        report.elapsed_units
    );
    // Every thread saw its messages in order — the paper's
    // order-preservation property survives real scheduling jitter
    // because ordering is structural (per-channel FIFO), not timed.
    for i in 1..n {
        let msgs: Vec<u32> = report
            .received_by(ProcId::from(i))
            .map(|d| d.payload.msg)
            .collect();
        let mut sorted = msgs.clone();
        sorted.sort_unstable();
        assert_eq!(msgs, sorted, "p{i} received out of order");
    }
    println!("  order preserved at every processor ✓");
}
