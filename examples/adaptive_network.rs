//! Broadcasting on a network whose latency changes mid-flight.
//!
//! Section 5 asks for algorithms that "adapt to changing λ". This
//! example models a WAN whose latency drops after a congestion episode
//! clears, and compares three strategies: a static tree built for the
//! congested latency, a static tree built for the clear latency, and the
//! greedy adaptive planner that re-reads λ before every send.
//!
//! Run with: `cargo run --example adaptive_network`

use postal::algos::ext::adaptive;
use postal::model::{Latency, Time};
use postal::sim::TimeVarying;

fn main() {
    let n = 200;
    // Congestion: λ = 8 until t = 2, then the network clears to λ = 1.
    let profile = TimeVarying::new(vec![
        (Time::ZERO, Latency::from_int(8)),
        (Time::from_int(2), Latency::TELEPHONE),
    ]);

    println!("Broadcast to {n} processors; λ = 8 until t = 2, then λ = 1.\n");

    for (name, report) in [
        (
            "static tree for λ = 8 (stale)",
            adaptive::run_static_under_profile(n, Latency::from_int(8), &profile),
        ),
        (
            "static tree for λ = 1 (optimistic)",
            adaptive::run_static_under_profile(n, Latency::TELEPHONE, &profile),
        ),
        (
            "adaptive (re-plans every send)",
            adaptive::run_adaptive(n, &profile),
        ),
    ] {
        assert!(adaptive::delivered_everywhere(&report, n));
        println!(
            "  {:<36} completed at t = {:<10} ({} messages, {} queued receives)",
            name,
            report.completion.to_string(),
            report.messages(),
            report
                .trace
                .transfers()
                .iter()
                .filter(|t| t.was_queued())
                .count(),
        );
    }

    println!(
        "\nThe adaptive planner switches from conservative Fibonacci splits to\n\
         aggressive binomial splits the moment the network clears, without\n\
         needing to know the profile in advance."
    );
}
