//! Collective-communication planner: pick the right broadcast algorithm
//! for your machine.
//!
//! The paper's motivation is machines like the CM-5, J-machine and
//! Vulcan, where the network looks fully connected and the latency ratio
//! λ is a measurable machine constant. This example plays the role of an
//! MPI library's collective tuner: given (n, λ) and a message count m, it
//! evaluates every algorithm's exact model time and recommends one —
//! the same decision MPI implementations make when switching between
//! binomial, pipelined, and scatter-allgather broadcasts.
//!
//! Run with: `cargo run --example collective_planner [n] [m] [lambda]`
//! e.g. `cargo run --example collective_planner 512 16 5/2`

use postal::model::{runtimes, Latency, Time};

struct Candidate {
    name: &'static str,
    time: Time,
    note: &'static str,
}

fn plan(n: u128, m: u64, lambda: Latency) -> Vec<Candidate> {
    let d = runtimes::latency_matched_degree(n, lambda);
    let mut v = vec![
        Candidate {
            name: "REPEAT",
            time: runtimes::repeat_time(n, m, lambda),
            note: "m overlapped optimal single-message broadcasts (Lemma 10)",
        },
        Candidate {
            name: "PACK",
            time: runtimes::pack_time(n, m, lambda),
            note: "one broadcast of the packed message (Lemma 12)",
        },
        Candidate {
            name: "PIPELINE",
            time: runtimes::pipeline_time(n, m, lambda),
            note: "streamed broadcast, regime chosen by m vs λ (Lemmas 14/16)",
        },
        Candidate {
            name: "LINE",
            time: runtimes::line_time(n, m, lambda),
            note: "degree-1 chain; asymptotically best as m → ∞",
        },
        Candidate {
            name: "STAR",
            time: runtimes::star_time(n, m, lambda),
            note: "root sends everything directly; best as λ → ∞",
        },
        Candidate {
            name: "DTREE(⌈λ⌉+1)",
            time: runtimes::dtree_time_bound(n, m, lambda, d),
            note: "latency-matched fixed-degree tree (Lemma 18 bound)",
        },
    ];
    v.sort_by_key(|c| c.time);
    v
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: u128 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let m: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let lambda: Latency = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| Latency::from_ratio(5, 2));

    println!("Broadcast plan for n = {n} processors, m = {m} messages, λ = {lambda}");
    println!(
        "Lower bound (Lemma 8): (m−1) + f_λ(n) = {} units\n",
        runtimes::multi_lower_bound(n, m, lambda)
    );

    let plans = plan(n, m, lambda);
    for (rank, c) in plans.iter().enumerate() {
        let marker = if rank == 0 { "→" } else { " " };
        println!(
            "{marker} {:<14} {:>14} units   {}",
            c.name,
            c.time.to_string(),
            c.note
        );
    }
    let lb = runtimes::multi_lower_bound(n, m, lambda);
    println!(
        "\nRecommended: {} ({:.2}× the lower bound)",
        plans[0].name,
        plans[0].time.to_f64() / lb.to_f64().max(1e-9)
    );
}
