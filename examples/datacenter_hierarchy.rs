//! Rack-aware broadcast in a two-level datacenter.
//!
//! Section 5 of the paper proposes latency hierarchies as future work:
//! this example models a datacenter of racks (fast intra-rack latency,
//! slow inter-rack latency) and compares a flat latency-blind broadcast
//! against the two-phase rack-aware algorithm, plus the other collectives
//! (combine / gossip / scatter) a datacenter job actually uses.
//!
//! Run with: `cargo run --example datacenter_hierarchy`

use postal::algos::ext::{combine, gossip, hier, scatter};
use postal::model::Latency;

fn main() {
    // 8 racks × 8 machines; intra-rack λ = 1, inter-rack λ = 8.
    let (n, rack) = (64usize, 8usize);
    let local = Latency::TELEPHONE;
    let remote = Latency::from_int(8);

    println!(
        "Datacenter: {} machines in {} racks (λ_local = {local}, λ_remote = {remote})\n",
        n,
        n / rack
    );

    let flat = hier::run_flat_under_hierarchy(n, rack, local, remote);
    let aware = hier::run_hierarchical(n, rack, local, remote);
    assert!(hier::delivered_everywhere(&flat, n));
    assert!(hier::delivered_everywhere(&aware, n));
    println!("Broadcast one message to all machines:");
    println!(
        "  flat tree (assumes λ_remote everywhere): {} units",
        flat.completion
    );
    println!(
        "  rack-aware two-phase broadcast:          {} units",
        aware.completion
    );
    println!(
        "  speedup: {:.2}×\n",
        flat.completion.to_f64() / aware.completion.to_f64()
    );

    // The other collectives, at the inter-rack latency.
    let values: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();

    let c = combine::run_combine(&values, remote);
    println!(
        "Combine (sum-reduce {} values to the root): total = {}, done at t = {} (optimal: reversed Fibonacci tree)",
        n, c.root_total, c.report.completion
    );

    let g = gossip::run_gossip(&values, remote);
    assert!(g.complete(&values));
    println!(
        "Gossip (everyone learns everything):        done at t = {} (gather + pipelined broadcast)",
        g.report.completion
    );

    let s = scatter::run_scatter(&values, remote);
    println!(
        "Scatter (personalized data to each node):   done at t = {} (direct star — provably optimal)",
        s.completion
    );
}
